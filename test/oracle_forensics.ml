(* Frozen pre-rewrite reference forensics, the oracle counterpart of
   Oracle_engine (same wait-for-graph extraction and cyclic-core
   isolation, over the oracle engine's state).  Unmodified
   lib/sim/forensics.ml apart from this header and the alias. *)

module Engine = Oracle_engine

(** Deadlock forensics: wait-for graph extraction and cyclic-core
    isolation over a quiesced simulator state.  See the interface for
    the model. *)

open Dataflow
open Types

type reason = Blocked_output | Awaiting_token

type edge = { src : int; dst : int; channel : int; reason : reason }
type note = { unit_id : int; label : string; state : string option }
type core = { members : int list; core_edges : edge list; notes : note list }
type report = { cycle : int; edges : edge list; cores : core list }

(* ------------------------------------------------------------------ *)
(* Wait-for edge extraction                                            *)

(** Demand-driven construction.  The base facts are the blocked
    channels: a producer offering a token its consumer refuses (valid
    and not ready) waits on that consumer.  Every unit somebody waits on
    is then {e demanded}, in one of two flavours that must not be
    conflated (a unit can owe a token downstream while separately owing
    readiness upstream — merging the two manufactures false cycles):

    - the target of an [Awaiting_token] edge is demanded {e as a
      producer}: it must drive its awaited output valid, which needs the
      (kind-aware) inputs of the value it would produce;
    - the target of a [Blocked_output] edge is demanded {e as a
      consumer}: it must assert ready on the refused input, which needs
      whatever its firing condition mentions — the sibling operands of a
      join, the turn-holders of a strict-rotation arbiter, room
      downstream for a full buffer.

    Each demand expands into [Awaiting_token] edges to the producers of
    the missing inputs and [Blocked_output] edges to the consumers of
    the gating outputs; propagating to a fixpoint yields the wait-for
    graph, whose cycles are exactly what sustains the deadlock.

    Exits that never received a token are demanded (as producers of
    their own completion) unconditionally — they are why the run did not
    complete — so pure starvation deadlocks with no stuck token anywhere
    are traced too. *)

type flavor = As_producer | As_consumer

(** [conservative] suppresses the edges that are only exact once the
    circuit has quiesced, so that a mid-flight probe never reports a
    cycle that in-flight tokens could still break:

    - a Merge's producer-demand is an OR-wait approximated as an AND —
      exact at quiescence (an alternative branch that could fire would
      have), unsound mid-flight;
    - a pipelined unit (operator/load/store) with tokens in flight will
      deliver its output without consuming anything, so demanding its
      inputs mid-flight manufactures waits that drain on their own. *)
let demanded_edges ?(conservative = false) sim g uid flavor =
  let kind = Graph.kind_of g uid in
  let valid p =
    match Graph.in_channel g uid p with
    | Some c -> Engine.channel_valid sim c.Graph.id
    | None -> false
  in
  let await ports =
    List.filter_map
      (fun p ->
        match Graph.in_channel g uid p with
        | Some c when not (Engine.channel_valid sim c.Graph.id) ->
            Some
              {
                src = uid;
                dst = c.Graph.src.Graph.unit_id;
                channel = c.Graph.id;
                reason = Awaiting_token;
              }
        | _ -> None)
      ports
  in
  let gated () =
    (* Cross-gated units (arbiter, lazy fork) assert VALID on every
       output while a grant is pending, so an output that shows no
       VALID carries no obligation — an edge over it would pair with
       the consumer's own awaiting-token edge into a vacuous cycle. *)
    let _, n_out = Types.arity kind in
    List.filter_map
      (fun p ->
        match Graph.out_channel g uid p with
        | Some c
          when Engine.channel_valid sim c.Graph.id
               && not (Engine.channel_ready sim c.Graph.id) ->
            Some
              {
                src = uid;
                dst = c.Graph.dst.Graph.unit_id;
                channel = c.Graph.id;
                reason = Blocked_output;
              }
        | _ -> None)
      (List.init n_out (fun p -> p))
  in
  let iota n = List.init n (fun p -> p) in
  (* Data inputs the unit's firing needs and cannot currently see.  The
     [await] filter keeps only the invalid ones, so over-approximating
     with the full operand set is fine. *)
  let mux_needs inputs =
    if not (valid 0) then [ 0 ]
    else
      match Graph.in_channel g uid 0 with
      | Some c -> (
          (* Selector present: only the chosen data input can help. *)
          match Engine.channel_data sim c.Graph.id with
          | VBool b -> [ (if b then 1 else 2) ]
          | VInt i when i >= 0 && i < inputs -> [ 1 + i ]
          | _ -> [])
      | None -> []
  in
  let arbiter_needs inputs policy =
    match policy with
    | Priority _ ->
        (* Any requester is served, so it starves only with none.  The
           all-inputs demand is an OR-wait (one arrival suffices), exact
           only at quiescence — a conservative probe stays silent. *)
        if List.exists valid (iota inputs) then []
        else if conservative then []
        else iota inputs
    | Rotation _ | Phased _ -> (
        (* Only the turn holder(s) can be served (Figure 1d).  A phased
           arbiter with several clusters holds an OR-wait across their
           holders; conservatively only a lone holder is a real wait. *)
        match Engine.arbiter_turn_holders sim uid with
        | Some holders ->
            if conservative && List.length holders > 1 then [] else holders
        | None -> [])
  in
  (* Output-gating edges are only genuine for units whose output VALID
     is crossed-gated by a sibling output's readiness (arbiter outputs
     fire together; a lazy fork is all-or-nothing).  Every other kind
     drives valid from its inputs alone, so a downstream block shows up
     as a base [valid && not ready] edge — emitting gated edges for them
     too would manufacture false cycles through channels that carry no
     obligation (e.g. an eager fork's already-delivered outputs). *)
  let busy () =
    match Engine.pipeline_busy sim uid with
    | Some (n, _) -> n > 0
    | None -> false
  in
  match flavor with
  | As_producer -> (
      match kind with
      | Entry _ | Stub -> [] (* a source: if exhausted, nothing can revive it *)
      | Exit | Sink | Const _ | Buffer _ -> await [ 0 ]
      | Load _ -> if conservative && busy () then [] else await [ 0 ]
      | Fork { lazy_ = false; _ } -> await [ 0 ]
      | Fork { lazy_ = true; _ } ->
          (* All-or-nothing: every sibling must be ready too. *)
          if valid 0 then gated () else await [ 0 ]
      | Join { inputs; _ } -> await (iota inputs)
      | Operator { ports; _ } ->
          if conservative && busy () then [] else await (iota ports)
      | Store _ -> if conservative && busy () then [] else await [ 0; 1 ]
      | Merge { inputs } ->
          (* An OR-wait; but the circuit is quiesced, so an alternative
             producer that could fire would have — all branches are dead
             and the AND approximation is exact.  Mid-flight that
             reasoning fails, so a conservative probe stays silent. *)
          if conservative then [] else await (iota inputs)
      | Mux { inputs } -> await (mux_needs inputs)
      | Branch _ -> await [ 0; 1 ]
      | Arbiter { inputs; policy } -> (
          (* Producing on one output also needs the sibling output ready
             (they fire together). *)
          match await (arbiter_needs inputs policy) with
          | [] -> gated ()
          | starved -> starved)
      | Credit_counter _ -> (
          match Engine.credit_count sim uid with
          | Some 0 -> await [ 0 ] (* waiting for a credit to return *)
          | _ -> []))
  | As_consumer -> (
      (* Why is ready deasserted on an input presenting a token?  The
         firing condition: sibling operands for all-input-fire units,
         the grant (and joint output readiness) for arbiters.  Kinds
         whose refusal can only come from a downstream block need no
         edges here: the block is visible as a base edge already. *)
      match kind with
      | Join { inputs; _ } -> await (iota inputs)
      | Operator { ports; _ } ->
          (* A busy pipeline may refuse an operand merely until a stage
             advances or its output drains — mid-flight that refusal
             resolves on its own, so a conservative probe stays silent. *)
          if conservative && busy () then [] else await (iota ports)
      | Store _ -> if conservative && busy () then [] else await [ 0; 1 ]
      | Mux { inputs } -> await (mux_needs inputs)
      | Branch _ -> await [ 0; 1 ]
      | Arbiter { inputs; policy } -> (
          match await (arbiter_needs inputs policy) with
          | [] -> gated ()
          | starved -> starved)
      | Fork { lazy_ = true; _ } -> gated ()
      | Entry _ | Exit | Sink | Stub | Const _
      | Fork { lazy_ = false; _ }
      | Buffer _ | Load _ | Merge _ | Credit_counter _ ->
          [])

(** The full wait-for graph of a quiesced simulator state (or, with
    [~conservative:true], a sound under-approximation of it mid-flight). *)
let wait_edges ?conservative sim =
  let g = Engine.graph_of sim in
  let edges = ref [] in
  let seen = Hashtbl.create 64 in
  let demanded = Hashtbl.create 64 in
  let frontier = Queue.create () in
  let demand u flavor =
    if not (Hashtbl.mem demanded (u, flavor)) then begin
      Hashtbl.replace demanded (u, flavor) ();
      Queue.add (u, flavor) frontier
    end
  in
  let add e =
    let key = (e.src, e.dst, e.channel, e.reason) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      edges := e :: !edges;
      demand e.dst
        (match e.reason with
        | Awaiting_token -> As_producer
        | Blocked_output -> As_consumer)
    end
  in
  Graph.iter_channels g (fun c ->
      let cid = c.Graph.id in
      if Engine.channel_valid sim cid && not (Engine.channel_ready sim cid)
      then
        add
          {
            src = c.Graph.src.Graph.unit_id;
            dst = c.Graph.dst.Graph.unit_id;
            channel = cid;
            reason = Blocked_output;
          });
  Graph.iter_units g (fun u ->
      if u.Graph.kind = Exit then demand u.Graph.uid As_producer);
  while not (Queue.is_empty frontier) do
    let u, flavor = Queue.pop frontier in
    List.iter add (demanded_edges ?conservative sim g u flavor)
  done;
  List.rev !edges

(* ------------------------------------------------------------------ *)
(* Cyclic-core isolation                                               *)

let state_note sim uid =
  match Engine.credit_count sim uid with
  | Some n -> Some (Fmt.str "credits %d" n)
  | None -> (
      match Engine.buffer_occupancy sim uid with
      | Some (occ, slots) ->
          Some
            (Fmt.str "buffer %d/%d%s" occ slots
               (if occ >= slots then " (full)" else ""))
      | None -> (
          match Engine.pipeline_busy sim uid with
          | Some (busy, depth) -> Some (Fmt.str "pipeline %d/%d" busy depth)
          | None -> None))

(* ------------------------------------------------------------------ *)
(* Livelock snapshot (Out_of_fuel post-mortem)                          *)

type firing = { f_unit : int; f_label : string; f_last : int; f_state : string option }

type livelock = {
  fuel : int;
  window : int;
  final_cycle : int;
  recent : firing list;
  exit_tokens : int;
  total_transfers : int;
}

(** An out-of-fuel run is not quiesced, so the wait-for analysis does
    not apply; what is diagnosable instead is {e who is still moving}.
    The snapshot lists every unit whose sequential state changed during
    the last [window] cycles of the run, most recently active first,
    with the same live-state annotations (credits, buffer occupancy,
    pipeline fill) as deadlock cores — a tight recent set around a loop
    with no exit progress reads as a token-recirculation livelock, while
    "everything is firing" reads as an honest too-small fuel budget. *)
let analyze_livelock ?(window = 64) (outcome : Engine.outcome) =
  match outcome.Engine.stats.Engine.status with
  | Engine.Completed _ | Engine.Deadlock _ -> None
  | Engine.Out_of_fuel fuel ->
      let sim = outcome.Engine.sim in
      let g = Engine.graph_of sim in
      let final_cycle = outcome.Engine.stats.Engine.cycles - 1 in
      let cutoff = final_cycle - window + 1 in
      let recent =
        Graph.fold_units g
          (fun acc u ->
            let uid = u.Graph.uid in
            let last = Engine.last_fire_cycle sim uid in
            if last >= cutoff then
              {
                f_unit = uid;
                f_label = Graph.label_of g uid;
                f_last = last;
                f_state = state_note sim uid;
              }
              :: acc
            else acc)
          []
        |> List.sort (fun a b ->
               match compare b.f_last a.f_last with
               | 0 -> compare a.f_unit b.f_unit
               | c -> c)
      in
      Some
        {
          fuel;
          window;
          final_cycle;
          recent;
          exit_tokens =
            List.length outcome.Engine.stats.Engine.exit_values;
          total_transfers = outcome.Engine.stats.Engine.transfers;
        }

let pp_livelock ppf l =
  Fmt.pf ppf
    "@[<v2>out of fuel after %d cycles (%d transfers, %d exit tokens): %d \
     unit(s) still firing in the last %d cycles"
    l.fuel l.total_transfers l.exit_tokens (List.length l.recent) l.window;
  List.iter
    (fun f ->
      Fmt.pf ppf "@,%s (unit %d) last fired at cycle %d%s" f.f_label f.f_unit
        f.f_last
        (match f.f_state with Some s -> Fmt.str " [%s]" s | None -> ""))
    l.recent;
  Fmt.pf ppf "@]"

let build_report ?conservative sim ~cycle =
  let g = Engine.graph_of sim in
  let edges = wait_edges ?conservative sim in
  let succ_tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let l =
        match Hashtbl.find_opt succ_tbl e.src with Some l -> l | None -> []
      in
      Hashtbl.replace succ_tbl e.src (e.dst :: l))
    edges;
  let succ u =
    match Hashtbl.find_opt succ_tbl u with Some l -> l | None -> []
  in
  let nodes =
    Graph.fold_units g (fun acc u -> u.Graph.uid :: acc) [] |> List.rev
  in
  let scc = Analysis.Scc.compute ~nodes ~succ in
  (* A cyclic core is a component of size > 1, or a single unit
     waiting on itself. *)
  let cores = ref [] in
  for c = Analysis.Scc.n_components scc - 1 downto 0 do
    let members = List.sort compare (Analysis.Scc.members scc c) in
    let cyclic =
      match members with
      | [] -> false
      | [ u ] -> List.exists (fun e -> e.src = u && e.dst = u) edges
      | _ -> true
    in
    if cyclic then begin
      let inside u = List.mem u members in
      let core_edges =
        List.filter (fun e -> inside e.src && inside e.dst) edges
      in
      let notes =
        List.map
          (fun u ->
            { unit_id = u; label = Graph.label_of g u; state = state_note sim u })
          members
      in
      cores := { members; core_edges; notes } :: !cores
    end
  done;
  { cycle; edges; cores = !cores }

let analyze (outcome : Engine.outcome) =
  match outcome.Engine.stats.Engine.status with
  | Engine.Completed _ | Engine.Out_of_fuel _ -> None
  | Engine.Deadlock cycle -> Some (build_report outcome.Engine.sim ~cycle)

(** Mid-flight probe over a still-running simulation: the conservative
    wait-for graph (no merge OR-waits, no busy pipelines demanded) only
    contains edges whose wait cannot resolve on its own, so any cyclic
    core it reports is already a sustained deadlock — even while other
    parts of the circuit are still making progress.  This is what lets
    the sanitizer convict a wedged sharing wrapper long before global
    quiescence. *)
let probe sim ~cycle = build_report ~conservative:true sim ~cycle

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let label_in core u =
  match List.find_opt (fun n -> n.unit_id = u) core.notes with
  | Some n -> n.label
  | None -> Fmt.str "unit_%d" u

let pp_reason ppf = function
  | Blocked_output -> Fmt.string ppf "output token refused by"
  | Awaiting_token -> Fmt.string ppf "awaiting token from"

let pp_core i ppf core =
  Fmt.pf ppf "@[<v2>cyclic core %d (%d units):" (i + 1)
    (List.length core.members);
  List.iter
    (fun n ->
      Fmt.pf ppf "@,%s (unit %d)%s" n.label n.unit_id
        (match n.state with Some s -> Fmt.str " [%s]" s | None -> ""))
    core.notes;
  List.iter
    (fun e ->
      Fmt.pf ppf "@,%s -> %a -> %s (channel %d)" (label_in core e.src)
        pp_reason e.reason (label_in core e.dst) e.channel)
    core.core_edges;
  Fmt.pf ppf "@]"

let pp ppf r =
  Fmt.pf ppf "@[<v>deadlock at cycle %d: %d cyclic core(s) in a %d-edge wait-for graph"
    r.cycle (List.length r.cores) (List.length r.edges);
  List.iteri (fun i core -> Fmt.pf ppf "@,%a" (pp_core i) core) r.cores;
  Fmt.pf ppf "@]"

let to_dot g r =
  let in_core = Hashtbl.create 32 in
  let note_of = Hashtbl.create 32 in
  let core_channel = Hashtbl.create 32 in
  List.iter
    (fun core ->
      List.iter (fun u -> Hashtbl.replace in_core u ()) core.members;
      List.iter
        (fun n ->
          match n.state with
          | Some s -> Hashtbl.replace note_of n.unit_id s
          | None -> ())
        core.notes;
      List.iter
        (fun e -> Hashtbl.replace core_channel e.channel ())
        core.core_edges)
    r.cores;
  Dot.to_string ~name:"deadlock"
    ~annotate:(fun u -> Hashtbl.find_opt note_of u)
    ~emphasize:(fun u -> Hashtbl.mem in_core u)
    ~emphasize_channel:(fun c -> Hashtbl.mem core_channel c)
    g

let core_contains r f =
  List.exists (fun core -> List.exists f core.members) r.cores
