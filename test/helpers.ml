(** Shared helpers for the test suites: micro-circuit construction and
    simulation shortcuts. *)

open Dataflow
open Dataflow.Types

let check = Alcotest.check
let checkb msg = Alcotest.(check bool) msg true
let checki = Alcotest.(check int)

(** Build a finished graph from a builder recipe. *)
let circuit f =
  let b = Builder.create () in
  f b;
  Builder.finalize b

(** A stream source: a loop emitting the integers 0..n-1 at II >= 1 into
    [use], which must return the wire to sink or store.  Returns the
    finished graph. *)
let int_stream ?(n = 16) use =
  circuit (fun b ->
      let ctrl = Builder.entry b VUnit in
      let i0 = Builder.const b ~ctrl (VInt 0) in
      let lim = Builder.const b ~ctrl (VInt n) in
      let exits =
        Builder.counted_loop b ~loop:0 ~inits:[ ctrl; i0; lim ]
          ~cond:(fun hs ->
            match hs with
            | [ _; i; l ] -> Builder.operator b (Icmp Lt) ~latency:0 [ i; l ] ~loop:0
            | _ -> assert false)
          ~body:(fun hs ->
            match hs with
            | [ c; i; l ] ->
                use b i;
                let one = Builder.const b ~ctrl:i (VInt 1) ~loop:0 in
                let i' = Builder.operator b Iadd ~latency:0 [ i; one ] ~loop:0 in
                [ c; i'; l ]
            | _ -> assert false)
      in
      match exits with
      | c :: _ -> ignore (Builder.exit_ b c)
      | [] -> assert false)

(** Run a graph; fail the test on deadlock or fuel exhaustion. *)
let run_ok ?memory g =
  let out = Sim.Engine.run ?memory g in
  (match out.Sim.Engine.stats.Sim.Engine.status with
  | Sim.Engine.Completed _ -> ()
  | st -> Alcotest.failf "simulation did not complete: %a" Sim.Engine.pp_status st);
  out

(** Run a graph and expect a deadlock. *)
let run_deadlock ?memory g =
  let out = Sim.Engine.run ?memory g in
  match out.Sim.Engine.stats.Sim.Engine.status with
  | Sim.Engine.Deadlock _ -> out
  | st -> Alcotest.failf "expected deadlock, got %a" Sim.Engine.pp_status st

(** The exit payloads of a completed run. *)
let exit_values out = out.Sim.Engine.stats.Sim.Engine.exit_values

let cycles out = out.Sim.Engine.stats.Sim.Engine.cycles

(** Compile mini-C source text (Bb_ordered by default). *)
let compile ?strategy src = Minic.Codegen.compile_source ?strategy src

(* Seed the property tests ourselves instead of letting
   [QCheck_alcotest.to_alcotest] do it: its default announces the seed
   on stdout at module-init time, and in shard-worker mode ([__worker])
   fd 1 is the supervisor's framed protocol pipe — a banner there reads
   as a corrupt frame.  The announcement goes to stderr instead;
   [QCHECK_SEED] still overrides for repeatability. *)
let qcheck_seed =
  lazy
    (let s =
       try int_of_string (Sys.getenv "QCHECK_SEED")
       with _ ->
         Random.self_init ();
         Random.int 1_000_000_000
     in
     Printf.eprintf "qcheck random seed: %d\n%!" s;
     s)

let qtest ?(count = 100) ?print name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| Lazy.force qcheck_seed |])
    (QCheck2.Test.make ~count ~name ?print gen prop)
