(** The I/O fault-injection layer ({!Exec.Fio}) and its exhaustive
    fault-schedule explorer ({!Exec.Faultfs}): off-mode passthrough,
    op-numbering determinism, plan codec, every built-in durability
    scenario clean under every (op, fault) pair, and the serve daemon's
    journal-lost degraded mode, end to end. *)

open Helpers
module Fio = Exec.Fio
module Faultfs = Exec.Faultfs
module Journal = Exec.Journal
module J = Exec.Jsonl

let checks = Alcotest.(check string)

let tmp_root = Filename.concat (Filename.get_temp_dir_name ()) "crush-test-faultfs"

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error _ -> ()

let fresh_dir name =
  let d = Filename.concat tmp_root name in
  rm_rf d;
  let rec mk p =
    if p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      mk (Filename.dirname p);
      Unix.mkdir p 0o755
    end
  in
  mk d;
  d

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* ------------------------------------------------------------------ *)
(* Fio: off-mode passthrough, counting, plan codec                     *)

let test_off_passthrough () =
  checkb "off by default" (not (Fio.armed ()));
  let dir = fresh_dir "off" in
  let path = Filename.concat dir "f.txt" in
  let oc = Fio.open_out path in
  Fio.output_string oc "hello ";
  Fio.output_string oc "world\n";
  Fio.fsync_out oc;
  Fio.close_out oc;
  checks "bytes round-trip" "hello world\n" (read_file path);
  let ic = Fio.open_in path in
  checks "input_line" "hello world" (Fio.input_line ic);
  Fio.close_in ic;
  Fio.rename path (path ^ ".2");
  checkb "renamed" (Sys.file_exists (path ^ ".2"));
  Fio.remove (path ^ ".2");
  Fio.fsync_dir dir;
  checkb "still off" (not (Fio.armed ()))

let test_op_counting () =
  let dir = fresh_dir "count" in
  let path = Filename.concat dir "g.txt" in
  let go () =
    let oc = Fio.open_out path in
    Fio.output_string oc "a";
    Fio.flush oc;
    Fio.close_out oc;
    Fio.rename path (path ^ ".r");
    Fio.remove (path ^ ".r")
  in
  Fio.arm_count ();
  go ();
  let n = Fio.disarm () in
  checki "ops numbered" 6 n;
  (* Determinism: the same workload numbers the same ops. *)
  Fio.arm_count ();
  go ();
  checki "deterministic op count" n (Fio.disarm ());
  (* A path filter excluding everything numbers nothing. *)
  Fio.arm_count ~path_filter:"/no/such/prefix" ();
  go ();
  checki "filtered ops" 0 (Fio.disarm ())

let test_plan_codec () =
  List.iter
    (fun fault ->
      let p1 = Fio.At { op = 12; fault } in
      let p2 = Fio.Every { n = 7; fault } in
      List.iter
        (fun p ->
          match Fio.plan_of_string (Fio.plan_to_string p) with
          | Ok p' ->
              checks "plan round-trip" (Fio.plan_to_string p)
                (Fio.plan_to_string p')
          | Error m -> Alcotest.failf "plan %s: %s" (Fio.plan_to_string p) m)
        [ p1; p2 ];
      match Fio.fault_of_string (Fio.fault_to_string fault) with
      | Ok f -> checkb "fault round-trip" (f = fault)
      | Error m -> Alcotest.fail m)
    Fio.all_faults;
  (match Fio.plan_of_string "bogus@3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus fault must not parse");
  match Fio.plan_of_string "eio@zero" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus op must not parse"

let test_protect_crash_semantics () =
  let ran = ref false in
  (* A simulated death runs no filesystem cleanup... *)
  (match
     Fio.protect
       ~finally:(fun () -> ran := true)
       (fun () -> raise (Fio.Crashed { op = 1; fault = Fio.Eio }))
   with
  | () -> Alcotest.fail "must re-raise"
  | exception Fio.Crashed _ -> ());
  checkb "finally skipped on crash" (not !ran);
  (* ...even when the crash arrives wrapped by an inner Fun.protect. *)
  (match
     Fio.protect
       ~finally:(fun () -> ran := true)
       (fun () ->
         raise (Fun.Finally_raised (Fio.Crashed { op = 2; fault = Fio.Eio })))
   with
  | () -> Alcotest.fail "must re-raise"
  | exception e -> checkb "wrapped crash recognized" (Fio.is_crash e));
  checkb "finally skipped on wrapped crash" (not !ran);
  (* Ordinary exceptions keep Fun.protect behavior. *)
  (match Fio.protect ~finally:(fun () -> ran := true) (fun () -> failwith "x") with
  | () -> Alcotest.fail "must re-raise"
  | exception Failure _ -> ());
  checkb "finally ran on plain exn" !ran

(* ------------------------------------------------------------------ *)
(* Torn-tail padding: the hole the explorer was built to catch         *)

let test_torn_tail_padding () =
  let dir = fresh_dir "torn" in
  let path = Filename.concat dir "j.jsonl" in
  let entry key = { Journal.key; attempts = 1; outcome = J.Int 1 } in
  let w = Journal.open_append path in
  Journal.record w (entry "alpha");
  Journal.close w;
  (* Simulate a torn final write: a record missing its newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc (Journal.entry_to_line (entry "torn"));
  close_out oc;
  (* Resuming must not concatenate the next record onto the torn tail
     (which would lose BOTH records to one unparsable line). *)
  let w = Journal.open_append path in
  Journal.record w (entry "bravo");
  Journal.close w;
  let tbl = Journal.load path in
  checkb "first record survives" (Hashtbl.mem tbl "alpha");
  checkb "resumed record survives" (Hashtbl.mem tbl "bravo");
  (* The torn record itself also parses here — it was only missing its
     terminator, and padding restored it without altering its bytes. *)
  checkb "torn record recovered" (Hashtbl.mem tbl "torn")

let test_write_atomic_stale_tmp () =
  let dir = fresh_dir "stale" in
  let path = Filename.concat dir "state.json" in
  (* A stale temp file from a previous crashed writer... *)
  let stale = path ^ ".tmp.99999" in
  Out_channel.with_open_bin stale (fun oc -> output_string oc "junk");
  Journal.write_atomic ~fsync:true path (fun oc -> output_string oc "new");
  checks "content" "new" (read_file path);
  (* ...is swept by the next writer, leaving no residue. *)
  let tmps =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           let rec has i =
             i + 5 <= String.length f
             && (String.sub f i 5 = ".tmp." || has (i + 1))
           in
           has 0)
  in
  checki "no .tmp. residue" 0 (List.length tmps)

(* ------------------------------------------------------------------ *)
(* The explorer: every built-in scenario clean at every injection point *)

let explore_clean name =
  let s =
    match Faultfs.find name with
    | Some s -> s
    | None -> Alcotest.failf "no scenario %s" name
  in
  let r = Faultfs.explore ~root:(fresh_dir "explore") s in
  checkb (name ^ ": explored every op") (r.Faultfs.total_ops > 0);
  checki
    (name ^ ": run per (op, fault)")
    (r.Faultfs.total_ops * List.length Fio.all_faults)
    (List.length r.Faultfs.verdicts);
  match Faultfs.violations r with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "%s: op %d %s: %s" name v.Faultfs.op
        (Fio.fault_to_string v.Faultfs.fault)
        (String.concat "; " v.Faultfs.violations)

let test_explore_journal () = explore_clean "journal"
let test_explore_atomic () = explore_clean "atomic"
let test_explore_merge () = explore_clean "merge"

(* The qcheck property the issue asks for: in a supervised campaign of
   n simulated tasks, EVERY injection point k x fault class, crash at k
   + resume yields a prefix-closed acked subset and a final merged
   journal byte-identical to the fault-free serial run.  The explorer
   encodes exactly those invariants in the campaign scenario's check;
   the property is that no (k, fault) violates them for any n. *)
let prop_campaign_exhaustive =
  qtest ~count:4 ~print:string_of_int
    "faultfs: campaign crash-at-k + resume is lossless for every k"
    QCheck2.Gen.(1 -- 4)
    (fun n_tasks ->
      let s = Faultfs.campaign_scenario ~n_tasks () in
      let r = Faultfs.explore ~root:(fresh_dir "qcampaign") s in
      Faultfs.violations r = [] && r.Faultfs.total_ops > 0)

(* ------------------------------------------------------------------ *)
(* Serve: journal-lost 503s, then degraded mode, then a clean drain    *)

let post ~port body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Serve.Http.write_request fd ~meth:"POST" ~path:"/v1/submit" ~headers:[]
        body;
      match
        Serve.Http.read_response ~deadline:(Unix.gettimeofday () +. 60.0) fd
      with
      | Ok (status, _, body) -> (
          match J.parse body with
          | Ok j -> (status, j)
          | Error m -> Alcotest.fail m)
      | Error _ -> Alcotest.fail "transport error")

let get ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Serve.Http.write_request fd ~meth:"GET" ~path "";
      match
        Serve.Http.read_response ~deadline:(Unix.gettimeofday () +. 30.0) fd
      with
      | Ok (status, _, body) -> (status, body)
      | Error _ -> Alcotest.fail "transport error")

let str_field j k = Option.bind (J.member k j) J.to_str

let test_serve_journal_lost () =
  let dir = fresh_dir "serve" in
  let jpath = Filename.concat dir "requests.jsonl" in
  let cfg =
    {
      (Serve.Server.default_config ~binary:Sys.executable_name) with
      Serve.Server.workers = 1;
      heartbeat_s = 0.0;
      header_timeout_s = 1.0;
      journal = Some jpath;
    }
  in
  (* Armed before the journal opens so its channel registers; every=2
     fails every record (each is a write op then a flush op, and the
     even one always lands on this record's pair). *)
  Fio.arm ~path_filter:jpath (Fio.Every { n = 2; fault = Fio.Eio });
  Fun.protect
    ~finally:(fun () -> if Fio.armed () then ignore (Fio.disarm ()))
    (fun () ->
      let t = Serve.Server.create cfg in
      let port = Serve.Server.port t in
      let drain = ref None in
      let th =
        Thread.create (fun () -> drain := Some (Serve.Server.run t)) ()
      in
      Fun.protect
        ~finally:(fun () ->
          Serve.Server.request_stop t;
          Thread.join th)
        (fun () ->
          let cold seed =
            Fmt.str {|{"kernel":"gsum","seed":%d,"deadline_ms":30000}|} seed
          in
          (* First three journalled completions: the append fails, the
             result is withheld as 503 journal-lost. *)
          for i = 1 to 3 do
            let s, j = post ~port (cold (100 + i)) in
            checki (Fmt.str "lost #%d status" i) 503 s;
            checks
              (Fmt.str "lost #%d code" i)
              "journal-lost"
              (Option.value ~default:"?" (str_field j "code"))
          done;
          (* Three consecutive failures degrade the journal: the daemon
             keeps serving, un-audited, instead of 503-ing forever. *)
          let s, j = post ~port (cold 999) in
          checki "degraded status" 200 s;
          checks "degraded code" "ok"
            (Option.value ~default:"?" (str_field j "code"));
          let s, body = get ~port "/v1/stats" in
          checki "stats status" 200 s;
          let stats =
            match J.parse body with Ok j -> j | Error m -> Alcotest.fail m
          in
          let int_field k =
            Option.value ~default:(-1)
              (Option.bind (J.member k stats) J.to_int)
          in
          checki "journal errors counted" 3 (int_field "journal_errors");
          checkb "degraded flag"
            (Option.value ~default:false
               (Option.bind (J.member "journal_degraded" stats) J.to_bool));
          Serve.Server.request_stop t);
      match !drain with
      | None -> Alcotest.fail "no drain report"
      | Some d ->
          checki "drain conns" 0 d.Serve.Server.conns_left;
          checki "drain workers" 0 d.Serve.Server.workers_alive;
          checki "drain fds" 0 d.Serve.Server.leaked_fds)

let suite =
  [
    Alcotest.test_case "fio: off-mode passthrough" `Quick test_off_passthrough;
    Alcotest.test_case "fio: deterministic op numbering" `Quick
      test_op_counting;
    Alcotest.test_case "fio: plan codec round-trip" `Quick test_plan_codec;
    Alcotest.test_case "fio: protect skips cleanup on crash" `Quick
      test_protect_crash_semantics;
    Alcotest.test_case "journal: torn tail padded on resume" `Quick
      test_torn_tail_padding;
    Alcotest.test_case "journal: stale tmp swept by write_atomic" `Quick
      test_write_atomic_stale_tmp;
    Alcotest.test_case "explorer: journal scenario clean" `Slow
      test_explore_journal;
    Alcotest.test_case "explorer: atomic scenario clean" `Quick
      test_explore_atomic;
    Alcotest.test_case "explorer: merge scenario clean" `Slow
      test_explore_merge;
    prop_campaign_exhaustive;
    Alcotest.test_case "serve: journal-lost then degraded then drained"
      `Slow test_serve_journal_lost;
  ]
