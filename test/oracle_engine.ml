(* Frozen pre-rewrite reference engine (the graph-of-records
   interpreter), kept verbatim as the differential-testing oracle for
   the data-oriented engine core.  Do not optimize or refactor this
   file: its value is that it is the exact implementation the rewrite
   must be bit-identical to (cycle counts, transfer counts, exit
   values, perturbation counters, event streams).  Apart from this
   header and the module aliases below, it is the unmodified
   lib/sim/engine.ml as of the rewrite. *)

module Chaos = Sim.Chaos
module Memory = Sim.Memory
module Eval = Sim.Eval

(** Cycle-accurate simulator of synchronous elastic circuits.

    Every cycle has two phases, mirroring hardware:

    - a combinational phase computes the fixpoint of the valid/ready
      handshake signals (and data) on all channels, by worklist
      propagation: re-evaluating a unit when a signal on one of its
      channels changed;
    - a sequential phase transfers a token on every channel asserting both
      valid and ready, and advances the internal state of stateful units
      (FIFOs, pipelines, credit counters, arbiters, forks).

    The simulator reproduces the behaviours the paper depends on:
    head-of-line blocking in single-enable pipelined units (Section 3),
    credits that are returned one cycle late (Section 4.3), lazy forks on
    the credit return path, and priority vs rotation arbitration
    (Figures 1d/1e).  Deadlock is detected as quiescence without
    completion: the circuit is deterministic, so two event-free cycles
    imply no token can ever move again.

    Chaos mode ([run ~chaos]) perturbs the run with the adversarial but
    protocol-legal behaviours of {!Chaos}: transient ready-deassertion
    at sinks and exits, inflated pipeline depths, jittered memory-port
    grants and permuted priority-arbiter tie-breaks.  Perturbed runs are
    no longer deterministic cycle-to-cycle, so quiescence alone does not
    prove deadlock; when the circuit goes quiet the engine suspends all
    perturbations and only declares deadlock if the circuit stays quiet
    under the deterministic baseline semantics — the same notion of
    deadlock as an unperturbed run. *)

open Dataflow
open Types

type unit_state =
  | S_stateless
  | S_entry of { mutable fired : bool }
  | S_fork of { sent : bool array }
  | S_buffer of {
      q : value Queue.t;
      slots : int;
      transparent : bool;
      mutable high_water : int;  (** max occupancy observed *)
    }
  | S_pipeline of { stages : value option array }  (** stage 0 = youngest *)
  | S_credit of { mutable count : int }
  | S_arbiter of { mutable turn : int }
  | S_phased of { turns : int array }  (** rotation pointer per cluster *)

type status =
  | Completed of int   (** cycle of the last event *)
  | Deadlock of int    (** cycle at which the circuit wedged *)
  | Out_of_fuel of int (** the fuel budget that elapsed without quiescence *)

(* ------------------------------------------------------------------ *)
(* Observability: the per-cycle event sink                             *)

(** Why a channel presenting a token was refused this cycle.  The engine
    classifies each stalled channel from the consumer's own state, so the
    reasons stay faithful to the simulated microarchitecture rather than
    being reverse-engineered from the waveform afterwards. *)
type stall_reason =
  | Backpressure      (** consumer refuses and no finer cause applies *)
  | Pipeline_full     (** single-enable pipeline with a blocked head token *)
  | Contention
      (** the consumer lost this cycle's arbitration: a load/store without
          its memory-port grant, or a sharing-wrapper arbiter input that
          was not served *)
  | No_credit
      (** consumer is a join gated by a drained credit counter — the
          credit-stall the CRUSH wrapper is designed to make rare *)
  | Operand_starved   (** multi-input consumer waiting on a sibling input *)

let string_of_stall_reason = function
  | Backpressure -> "backpressure"
  | Pipeline_full -> "pipeline-full"
  | Contention -> "contention"
  | No_credit -> "no-credit"
  | Operand_starved -> "operand-starved"

(** One cycle-stamped observation from the transfer/settle loop.
    [E_transfer] and [E_stall] describe channels at the combinational
    fixpoint (the same instant the sanitizers see); [E_fire] marks a
    unit whose sequential state advanced; [E_credit] carries the grant
    ([delta = -1]) / return ([delta = +1]) traffic of a credit counter
    with the pre-transfer count; [E_grant] records which input an
    arbiter served. *)
type event =
  | E_fire of { cycle : int; uid : int }
  | E_transfer of { cycle : int; cid : int; data : value }
  | E_stall of { cycle : int; cid : int; reason : stall_reason }
  | E_credit of { cycle : int; uid : int; delta : int; count : int }
  | E_grant of { cycle : int; uid : int; port : int }

type sink = event -> unit

(** Raised by {!run} when the caller-provided [deadline] reports the
    job's wall-clock budget exhausted.  The deadline is polled
    cooperatively every {!deadline_poll_period} cycles, so for a
    deterministic deadline predicate (e.g. one that fires unconditionally)
    the interruption point — and therefore the carried cycle count — is
    itself deterministic. *)
exception Timeout of { cycles : int }

(** The deadline predicate is consulted once every this many cycles —
    rarely enough that the check stays off the hot path, often enough
    that a wedged-but-busy circuit is interrupted promptly. *)
let deadline_poll_period = 64

type stats = {
  status : status;
  cycles : int;             (** total simulated cycles until quiescence *)
  transfers : int;          (** total tokens moved across channels *)
  exit_values : value list; (** tokens received by Exit units *)
  perturbations : Chaos.counters;
      (** how often each chaos family bit; all zeros without chaos *)
}

(** One memory port (a load port or a store port of one array): the units
    competing for it, a round-robin pointer, and the per-unit request
    flags of the current cycle.  Each array offers one load port and one
    store port (dual-port BRAM); contention is resolved by round-robin
    arbitration that skips absent requests, so it cannot deadlock. *)
type port = {
  pid : int;                    (** port id, for chaos decision streams *)
  group : int array;            (** unit ids sharing this port *)
  mutable rr : int;             (** index of the next unit to favour *)
  mutable joff : int;           (** chaos jitter offset added to [rr] *)
}

type t = {
  g : Graph.t;
  memory : Memory.t;
  live_units : int array;
  step_units : int array;
      (** the active set of the sequential phase: units whose internal
          state can change between cycles (entries, exits, eager forks,
          buffers, pipelines, credit counters, stateful arbiters).
          Stateless units only react combinationally and never need
          sequential stepping, so each cycle costs O(stateful units)
          instead of O(all units). *)
  cvalid : bool array;
  cready : bool array;
  cdata : value array;
  state : unit_state array;
  queued : bool array;
  queue : int Queue.t;
  port_of : port option array;  (** per unit: the memory port it uses *)
  ports : port array;           (** all memory ports *)
  requesting : bool array;      (** per unit: requesting its port now *)
  mutable n_fired : int;
      (** channels currently asserting both valid and ready — maintained
          incrementally on every handshake-signal flip so the per-cycle
          transfer count is O(1) instead of a scan over all channels *)
  n_exits : int;                (** number of Exit units in the graph *)
  mutable n_exit_received : int;
      (** tokens received by Exit units so far; completion checks compare
          this counter against [n_exits] in O(1) instead of re-counting
          [exit_values] on every quiescence probe *)
  mutable exit_values : value list;
  mutable transfers : int;
  last_fire : int array;
      (** per unit: the last cycle at which its sequential state changed,
          [-1] if it never did — the raw material of the livelock
          snapshot {!Forensics} builds for [Out_of_fuel] runs *)
  sink : sink option;
      (** observability event sink; [None] keeps every emission site on
          its zero-cost branch (a single [match] per site per cycle) *)
  chaos : Chaos.t option;
  chaos_stall : bool;           (** sinks can stall (config + sinks exist) *)
  chaos_jitter : bool;          (** ports are jittered (config + ports exist) *)
  chaos_permute : bool;         (** arbiter tie-breaks are permuted
                                    (config + priority arbiters exist) *)
  chaos_stalled : bool array;   (** per unit: sink/exit stalled this cycle *)
  chaos_sinks : int array;      (** uids of Exit and Sink units *)
  chaos_arbiters : int array;   (** uids of Priority arbiters *)
  mutable chaos_suspended : bool;
      (** perturbations withdrawn to test quiescence deterministically *)
}

(** [extra] adds chaos pipeline stages: an elastic circuit must tolerate
    any latency, so inflating a pipelined unit is a legal perturbation. *)
let init_state ~extra (k : kind) =
  match k with
  | Entry _ -> S_entry { fired = false }
  | Fork { outputs; lazy_ = false } -> S_fork { sent = Array.make outputs false }
  | Buffer { slots; transparent; init; _ } ->
      let q = Queue.create () in
      List.iter (fun v -> Queue.add v q) init;
      S_buffer { q; slots; transparent; high_water = Queue.length q }
  | Operator { latency; _ } when latency > 0 ->
      S_pipeline { stages = Array.make (latency + extra) None }
  | Load { latency; _ } ->
      S_pipeline { stages = Array.make (max 1 latency + extra) None }
  | Store _ -> S_pipeline { stages = Array.make 1 None }
  | Credit_counter { init } -> S_credit { count = init }
  | Arbiter { policy = Rotation _; _ } -> S_arbiter { turn = 0 }
  | Arbiter { policy = Phased clusters; _ } ->
      S_phased { turns = Array.make (List.length clusters) 0 }
  | _ -> S_stateless

let create ?chaos ?memory ?sink g =
  Validate.check_exn g;
  let chaos = Option.map Chaos.make chaos in
  let memory = match memory with Some m -> m | None -> Memory.of_graph g in
  let n_units = g.Graph.n_units and n_chan = g.Graph.n_channels in
  let live = Graph.fold_units g (fun acc u -> u.Graph.uid :: acc) [] in
  let state = Array.make n_units S_stateless in
  Graph.iter_units g (fun u ->
      let extra =
        match chaos with
        | Some ch -> Chaos.extra_latency ch ~uid:u.Graph.uid
        | None -> 0
      in
      state.(u.Graph.uid) <- init_state ~extra u.Graph.kind);
  let port_of = Array.make (max 1 n_units) None in
  let groups : (string * bool, int list ref) Hashtbl.t = Hashtbl.create 7 in
  Graph.iter_units g (fun u ->
      let key =
        match u.Graph.kind with
        | Load { memory; _ } -> Some (memory, true)
        | Store { memory } -> Some (memory, false)
        | _ -> None
      in
      match key with
      | None -> ()
      | Some key ->
          let l =
            match Hashtbl.find_opt groups key with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace groups key l;
                l
          in
          l := u.Graph.uid :: !l);
  let ports = ref [] in
  let n_ports = ref 0 in
  Hashtbl.iter
    (fun _ l ->
      let group = Array.of_list (List.rev !l) in
      let p = { pid = !n_ports; group; rr = 0; joff = 0 } in
      incr n_ports;
      ports := p :: !ports;
      Array.iter (fun uid -> port_of.(uid) <- Some p) group)
    groups;
  let chaos_sinks =
    Graph.fold_units g
      (fun acc u ->
        match u.Graph.kind with
        | Exit | Sink -> u.Graph.uid :: acc
        | _ -> acc)
      []
  in
  let chaos_arbiters =
    Graph.fold_units g
      (fun acc u ->
        match u.Graph.kind with
        | Arbiter { policy = Priority _; _ } -> u.Graph.uid :: acc
        | _ -> acc)
      []
  in
  (* The active set of the sequential phase: every unit whose [step_unit]
     can do work.  Exits are stateless in [unit_state] terms but record
     arriving tokens, so they belong to the set too. *)
  let step_units =
    Graph.fold_units g
      (fun acc u ->
        let steps =
          match u.Graph.kind with
          | Exit -> true
          | _ -> ( match state.(u.Graph.uid) with S_stateless -> false | _ -> true)
        in
        if steps then u.Graph.uid :: acc else acc)
      []
  in
  let n_exits =
    Graph.fold_units g (fun n u -> if u.Graph.kind = Exit then n + 1 else n) 0
  in
  let cfg = Option.map Chaos.config chaos in
  let chaos_on f = match cfg with Some c -> f c | None -> false in
  {
    g;
    memory;
    live_units = Array.of_list (List.rev live);
    step_units = Array.of_list (List.rev step_units);
    cvalid = Array.make (max 1 n_chan) false;
    cready = Array.make (max 1 n_chan) false;
    cdata = Array.make (max 1 n_chan) VUnit;
    state;
    queued = Array.make (max 1 n_units) false;
    queue = Queue.create ();
    port_of;
    ports = Array.of_list (List.rev !ports);
    requesting = Array.make (max 1 n_units) false;
    n_fired = 0;
    n_exits;
    n_exit_received = 0;
    exit_values = [];
    transfers = 0;
    last_fire = Array.make (max 1 n_units) (-1);
    sink;
    chaos;
    chaos_stall =
      chaos_on (fun c -> c.Chaos.stall_prob > 0.0) && chaos_sinks <> [];
    chaos_jitter = chaos_on (fun c -> c.Chaos.jitter_ports) && !ports <> [];
    chaos_permute =
      chaos_on (fun c -> c.Chaos.permute_arbiters) && chaos_arbiters <> [];
    chaos_stalled = Array.make (max 1 n_units) false;
    chaos_sinks = Array.of_list (List.rev chaos_sinks);
    chaos_arbiters = Array.of_list (List.rev chaos_arbiters);
    chaos_suspended = false;
  }

(* ------------------------------------------------------------------ *)
(* Signal access helpers                                               *)

let in_cid t u p = t.g.Graph.in_of.(u).(p)
let out_cid t u p = t.g.Graph.out_of.(u).(p)

let in_valid t u p = t.cvalid.(in_cid t u p)
let in_data t u p = t.cdata.(in_cid t u p)
let out_ready t u p = t.cready.(out_cid t u p)

let enqueue t u =
  if u >= 0 && not t.queued.(u) then begin
    t.queued.(u) <- true;
    Queue.add u t.queue
  end

(** Drive valid/data on output port [p] of [u]; wake the consumer if the
    signal changed. *)
let drive_out t u p ~valid ~data =
  let cid = out_cid t u p in
  (* [compare], not [(<>)]: tokens can legitimately carry NaN, and IEEE
     [nan <> nan] would report an eternal "change", re-enqueueing the
     consumer until the settle budget dies. *)
  let changed =
    t.cvalid.(cid) <> valid || (valid && compare t.cdata.(cid) data <> 0)
  in
  if changed then begin
    if t.cvalid.(cid) <> valid && t.cready.(cid) then
      t.n_fired <- (if valid then t.n_fired + 1 else t.n_fired - 1);
    t.cvalid.(cid) <- valid;
    if valid then t.cdata.(cid) <- data;
    let c = Graph.channel_exn t.g cid in
    enqueue t c.Graph.dst.unit_id
  end

(** Drive ready on input port [p] of [u]; wake the producer on change. *)
let drive_ready t u p ready =
  let cid = in_cid t u p in
  if t.cready.(cid) <> ready then begin
    if t.cvalid.(cid) then
      t.n_fired <- (if ready then t.n_fired + 1 else t.n_fired - 1);
    t.cready.(cid) <- ready;
    let c = Graph.channel_exn t.g cid in
    enqueue t c.Graph.src.unit_id
  end

let index_of_selector n v =
  let i =
    match v with
    | VBool true -> 0
    | VBool false -> 1
    | VInt i -> i
    | v ->
        invalid_arg (Fmt.str "Engine: bad selector token %s" (value_to_string v))
  in
  if i < 0 || i >= n then
    invalid_arg (Fmt.str "Engine: selector %d out of range [0,%d)" i n)
  else i

(** Update the request flag of a memory-port client; when it changes, the
    whole port group is re-evaluated since the grant may move. *)
let set_requesting t u req =
  if t.requesting.(u) <> req then begin
    t.requesting.(u) <- req;
    match t.port_of.(u) with
    | Some p -> Array.iter (fun v -> enqueue t v) p.group
    | None -> ()
  end

(** Round-robin grant: [u] wins its port when no requesting sibling comes
    earlier in rotation order starting at the port's pointer. *)
let granted t u =
  match t.port_of.(u) with
  | None -> true
  | Some p ->
      if not t.requesting.(u) then false
      else begin
        let n = Array.length p.group in
        let pos_of x =
          let rec find i = if p.group.(i) = x then i else find (i + 1) in
          find 0
        in
        (* [joff] is the chaos jitter: a pseudo-random per-cycle rotation
           of the grant pointer, a legal arbitration of the port. *)
        let rot x = (pos_of x - p.rr - p.joff + (2 * n)) mod n in
        let my = rot u in
        let blocked = ref false in
        Array.iter
          (fun v -> if v <> u && t.requesting.(v) && rot v < my then blocked := true)
          p.group;
        not !blocked
      end

let port_fired t u =
  match t.port_of.(u) with
  | None -> ()
  | Some p ->
      let n = Array.length p.group in
      let rec find i = if p.group.(i) = u then i else find (i + 1) in
      p.rr <- (find 0 + 1) mod n;
      (* The grant may move: re-evaluate every client next cycle. *)
      Array.iter (fun v -> enqueue t v) p.group

let all_inputs_valid t u n =
  let ok = ref true in
  for p = 0 to n - 1 do
    if not (in_valid t u p) then ok := false
  done;
  !ok

let input_values t u n = List.init n (fun p -> in_data t u p)

(* ------------------------------------------------------------------ *)
(* Combinational semantics, one unit                                   *)

let eval_unit t u =
  let k = Graph.kind_of t.g u in
  match (k, t.state.(u)) with
  | Entry v, S_entry s -> drive_out t u 0 ~valid:(not s.fired) ~data:v
  | Exit, _ | Sink, _ -> drive_ready t u 0 (not t.chaos_stalled.(u))
  | Const v, _ ->
      drive_out t u 0 ~valid:(in_valid t u 0) ~data:v;
      drive_ready t u 0 (out_ready t u 0)
  | Fork { outputs; lazy_ = false }, S_fork { sent } ->
      let v = in_valid t u 0 and d = in_data t u 0 in
      let all_done = ref true in
      for p = 0 to outputs - 1 do
        drive_out t u p ~valid:(v && not sent.(p)) ~data:d;
        if not (sent.(p) || out_ready t u p) then all_done := false
      done;
      drive_ready t u 0 (v && !all_done)
  | Fork { outputs; lazy_ = true }, _ ->
      let v = in_valid t u 0 and d = in_data t u 0 in
      let all = ref true in
      for p = 0 to outputs - 1 do
        if not (out_ready t u p) then all := false
      done;
      for p = 0 to outputs - 1 do
        (* out_p is valid when every sibling is ready: all-or-nothing. *)
        let siblings_ready = ref true in
        for q = 0 to outputs - 1 do
          if q <> p && not (out_ready t u q) then siblings_ready := false
        done;
        drive_out t u p ~valid:(v && !siblings_ready) ~data:d
      done;
      drive_ready t u 0 !all
  | Join { inputs; keep }, _ ->
      let all = all_inputs_valid t u inputs in
      let kept =
        List.filteri (fun i _ -> keep.(i)) (input_values t u inputs)
      in
      let data =
        match kept with [] -> VUnit | [ v ] -> v | vs -> VTuple vs
      in
      drive_out t u 0 ~valid:all ~data;
      let fire = all && out_ready t u 0 in
      for p = 0 to inputs - 1 do
        drive_ready t u p fire
      done
  | Merge { inputs }, _ ->
      let chosen = ref (-1) in
      for p = inputs - 1 downto 0 do
        if in_valid t u p then chosen := p
      done;
      let valid = !chosen >= 0 in
      let data = if valid then in_data t u !chosen else VUnit in
      drive_out t u 0 ~valid ~data;
      for p = 0 to inputs - 1 do
        drive_ready t u p (p = !chosen && out_ready t u 0)
      done
  | Arbiter { inputs; policy }, st ->
      let grant =
        match (policy, st) with
        | Priority order, _ ->
            (* Highest-priority requesting input wins; absent requests
               never block others (Section 4.2).  Under chaos the
               tie-break order is re-drawn every cycle: any requesting
               input may win, which is a legal work-conserving
               arbitration — credits must keep it deadlock-free. *)
            let order =
              match t.chaos with
              | Some ch when not t.chaos_suspended ->
                  Chaos.permute_priority ch ~uid:u order
              | _ -> order
            in
            List.find_opt (fun p -> in_valid t u p) order
        | Rotation order, S_arbiter { turn } ->
            (* Strict total order: only the operation whose turn it is
               may proceed (deadlock-prone, Figure 1d). *)
            let p = List.nth order (turn mod List.length order) in
            if in_valid t u p then Some p else None
        | Phased clusters, S_phased { turns } ->
            (* Priority across clusters, strict rotation within one:
               the In-order baseline on whole programs. *)
            let rec scan i = function
              | [] -> None
              | cluster :: rest ->
                  let p = List.nth cluster (turns.(i) mod List.length cluster) in
                  if in_valid t u p then Some p else scan (i + 1) rest
            in
            scan 0 clusters
        | (Rotation _ | Phased _), _ -> assert false
      in
      (* The two outputs (operands to the shared unit, index to the
         condition buffer) fire together: each is valid only when the
         sibling is ready. *)
      let sibling_ready p = out_ready t u (1 - p) in
      (match grant with
      | Some p ->
          drive_out t u 0 ~valid:(sibling_ready 0) ~data:(in_data t u p);
          drive_out t u 1 ~valid:(sibling_ready 1) ~data:(VInt p)
      | None ->
          drive_out t u 0 ~valid:false ~data:VUnit;
          drive_out t u 1 ~valid:false ~data:VUnit);
      for p = 0 to inputs - 1 do
        drive_ready t u p
          (grant = Some p && out_ready t u 0 && out_ready t u 1)
      done
  | Mux { inputs }, _ ->
      let sel_v = in_valid t u 0 in
      let idx = if sel_v then index_of_selector inputs (in_data t u 0) else -1 in
      let data_v = idx >= 0 && in_valid t u (1 + idx) in
      drive_out t u 0 ~valid:(sel_v && data_v)
        ~data:(if data_v then in_data t u (1 + idx) else VUnit);
      let fire = sel_v && data_v && out_ready t u 0 in
      drive_ready t u 0 fire;
      for p = 0 to inputs - 1 do
        drive_ready t u (1 + p) (fire && p = idx)
      done
  | Branch { outputs }, _ ->
      let data_v = in_valid t u 0 and cond_v = in_valid t u 1 in
      let idx =
        if cond_v then index_of_selector outputs (in_data t u 1) else -1
      in
      for p = 0 to outputs - 1 do
        drive_out t u p ~valid:(data_v && cond_v && p = idx)
          ~data:(in_data t u 0)
      done;
      let fire = data_v && cond_v && idx >= 0 && out_ready t u idx in
      drive_ready t u 0 fire;
      drive_ready t u 1 fire
  | Buffer _, S_buffer { q; slots; transparent; _ } ->
      let len = Queue.length q in
      if transparent then begin
        let iv = in_valid t u 0 in
        let valid = len > 0 || iv in
        let data = if len > 0 then Queue.peek q else in_data t u 0 in
        drive_out t u 0 ~valid ~data;
        drive_ready t u 0 (len < slots)
      end
      else begin
        drive_out t u 0 ~valid:(len > 0)
          ~data:(if len > 0 then Queue.peek q else VUnit);
        drive_ready t u 0 (len < slots)
      end
  | Operator { op; latency = 0; ports }, _ ->
      let all = all_inputs_valid t u ports in
      let data = if all then Eval.apply op (input_values t u ports) else VUnit in
      drive_out t u 0 ~valid:all ~data;
      let fire = all && out_ready t u 0 in
      for p = 0 to ports - 1 do
        drive_ready t u p fire
      done
  | Operator { ports; _ }, S_pipeline { stages } ->
      (* Single-enable pipeline: if the head token cannot leave, the whole
         unit stalls and refuses new operands (head-of-line blocking). *)
      let depth = Array.length stages in
      let head = stages.(depth - 1) in
      let out_v = head <> None in
      drive_out t u 0 ~valid:out_v
        ~data:(match head with Some v -> v | None -> VUnit);
      let can_advance = (not out_v) || out_ready t u 0 in
      let all = all_inputs_valid t u ports in
      for p = 0 to ports - 1 do
        drive_ready t u p (can_advance && all)
      done
  | Load _, S_pipeline { stages } ->
      let depth = Array.length stages in
      let head = stages.(depth - 1) in
      let out_v = head <> None in
      drive_out t u 0 ~valid:out_v
        ~data:(match head with Some v -> v | None -> VUnit);
      let can_advance = (not out_v) || out_ready t u 0 in
      set_requesting t u (can_advance && in_valid t u 0);
      drive_ready t u 0 (can_advance && in_valid t u 0 && granted t u)
  | Store _, S_pipeline { stages } ->
      let head = stages.(0) in
      let out_v = head <> None in
      drive_out t u 0 ~valid:out_v ~data:VUnit;
      let can_advance = (not out_v) || out_ready t u 0 in
      let all = all_inputs_valid t u 2 in
      set_requesting t u (can_advance && all);
      let ok = can_advance && all && granted t u in
      drive_ready t u 0 ok;
      drive_ready t u 1 ok
  | Credit_counter _, S_credit { count } ->
      drive_out t u 0 ~valid:(count > 0) ~data:VUnit;
      drive_ready t u 0 true
  | Stub, _ -> drive_out t u 0 ~valid:false ~data:VUnit
  | _ ->
      invalid_arg
        (Fmt.str "Engine: inconsistent state for unit %s" (Graph.label_of t.g u))

(** Run the combinational phase to fixpoint, starting from the units
    already in the work queue (incremental: signals persist between
    cycles, so only units whose sequential state changed — and whatever
    their signal changes reach — need re-evaluation).  Raises on
    oscillation. *)
let settle ?deadline ~cycle t =
  let budget = ref (50 + (200 * Array.length t.live_units)) in
  let recent = Queue.create () in
  let evals = ref 0 in
  while not (Queue.is_empty t.queue) do
    decr budget;
    (* A pathological settle can churn for a long wall-clock time inside
       one cycle (the oscillation class), so the watchdog is also polled
       here — every 1024 evaluations, cheap enough to never matter on a
       healthy fixpoint. *)
    incr evals;
    (match deadline with
    | Some d when !evals land 1023 = 0 && d () ->
        raise (Timeout { cycles = cycle })
    | _ -> ());
    if !budget < 0 then begin
      let names =
        Queue.fold (fun acc u -> Graph.label_of t.g u :: acc) [] recent
        |> List.sort_uniq String.compare
      in
      failwith
        (Fmt.str
           "Engine: combinational signals do not settle at cycle %d (cycling: %a)"
           cycle
           Fmt.(list ~sep:comma string)
           names)
    end;
    let u = Queue.pop t.queue in
    t.queued.(u) <- false;
    if !budget < 40 then Queue.add u recent;
    eval_unit t u
  done

(* ------------------------------------------------------------------ *)
(* Sequential phase                                                    *)

let fired t cid = cid >= 0 && t.cvalid.(cid) && t.cready.(cid)
let in_fired t u p = fired t (in_cid t u p)
let out_fired t u p = fired t (out_cid t u p)

(** Advance the state of one unit after the transfers of this cycle.
    Returns [true] when the internal state changed (used for quiescence
    detection: pipeline bubbles moving without channel transfers). *)
let step_unit t u =
  let k = Graph.kind_of t.g u in
  match (k, t.state.(u)) with
  | Entry _, S_entry s ->
      if out_fired t u 0 then begin
        s.fired <- true;
        true
      end
      else false
  | Exit, _ ->
      if in_fired t u 0 then begin
        t.exit_values <- in_data t u 0 :: t.exit_values;
        t.n_exit_received <- t.n_exit_received + 1;
        true
      end
      else false
  | Fork { outputs; lazy_ = false }, S_fork { sent } ->
      let consumed = in_fired t u 0 in
      let changed = ref consumed in
      for p = 0 to outputs - 1 do
        let s' =
          if consumed then false else sent.(p) || out_fired t u p
        in
        if s' <> sent.(p) then changed := true;
        sent.(p) <- s'
      done;
      !changed
  | Buffer _, (S_buffer { q; transparent; _ } as st) ->
      let popped_from_queue =
        out_fired t u 0 && (not transparent || Queue.length q > 0)
      in
      let bypassed = out_fired t u 0 && not popped_from_queue in
      if popped_from_queue then ignore (Queue.pop q);
      if in_fired t u 0 && not bypassed then Queue.add (in_data t u 0) q;
      (match st with
      | S_buffer b -> b.high_water <- max b.high_water (Queue.length q)
      | _ -> ());
      popped_from_queue || bypassed || in_fired t u 0
  | Operator { op; ports; _ }, S_pipeline { stages } ->
      let depth = Array.length stages in
      let head = stages.(depth - 1) in
      let can_advance = head = None || out_fired t u 0 in
      if can_advance then begin
        let entering =
          if in_fired t u 0 then Some (Eval.apply op (input_values t u ports))
          else None
        in
        let moved = ref (out_fired t u 0 || entering <> None) in
        for s = depth - 1 downto 1 do
          if stages.(s) <> stages.(s - 1) then moved := true;
          stages.(s) <- stages.(s - 1)
        done;
        if stages.(0) <> entering then moved := true;
        stages.(0) <- entering;
        !moved
      end
      else false
  | Load { memory; _ }, S_pipeline { stages } ->
      let depth = Array.length stages in
      let head = stages.(depth - 1) in
      let can_advance = head = None || out_fired t u 0 in
      if can_advance then begin
        let entering =
          if in_fired t u 0 then begin
            port_fired t u;
            Some (Memory.read t.memory memory (in_data t u 0))
          end
          else None
        in
        let moved = ref (out_fired t u 0 || entering <> None) in
        for s = depth - 1 downto 1 do
          if stages.(s) <> stages.(s - 1) then moved := true;
          stages.(s) <- stages.(s - 1)
        done;
        if stages.(0) <> entering then moved := true;
        stages.(0) <- entering;
        !moved
      end
      else false
  | Store { memory }, S_pipeline { stages } ->
      let head = stages.(0) in
      let can_advance = head = None || out_fired t u 0 in
      if can_advance then begin
        let entering =
          if in_fired t u 0 then begin
            port_fired t u;
            Memory.write t.memory memory (in_data t u 0) (in_data t u 1);
            Some VUnit
          end
          else None
        in
        let moved = head <> entering || out_fired t u 0 in
        stages.(0) <- entering;
        moved
      end
      else false
  | Credit_counter _, S_credit s ->
      let before = s.count in
      if out_fired t u 0 then s.count <- s.count - 1;
      if in_fired t u 0 then s.count <- s.count + 1;
      s.count <> before
  | Arbiter { inputs; policy = Rotation order }, S_arbiter s ->
      let granted = ref false in
      for p = 0 to inputs - 1 do
        if in_fired t u p then granted := true
      done;
      if !granted then begin
        s.turn <- (s.turn + 1) mod List.length order;
        true
      end
      else false
  | Arbiter { inputs; policy = Phased clusters }, S_phased { turns } ->
      let fired_port = ref (-1) in
      for p = 0 to inputs - 1 do
        if in_fired t u p then fired_port := p
      done;
      if !fired_port >= 0 then begin
        List.iteri
          (fun i cluster ->
            if List.mem !fired_port cluster then
              turns.(i) <- (turns.(i) + 1) mod List.length cluster)
          clusters;
        true
      end
      else false
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Top-level run loop                                                  *)

(** Tokens moving this cycle.  Without an observer this is the
    incrementally maintained [n_fired] counter (O(1)); the full channel
    scan only runs when an observer needs every fired channel. *)
let count_transfers ?observer ~cycle t =
  match observer with
  | None -> t.n_fired
  | Some f ->
      let n = ref 0 in
      Graph.iter_channels t.g (fun c ->
          if fired t c.Graph.id then begin
            incr n;
            f cycle c t.cdata.(c.Graph.id)
          end);
      !n

(** Channels currently presenting a token that the consumer refuses:
    diagnostic for deadlock reports. *)
let stalled_channels t =
  let acc = ref [] in
  Graph.iter_channels t.g (fun c ->
      if t.cvalid.(c.Graph.id) && not t.cready.(c.Graph.id) then
        acc := c.Graph.id :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Event emission (only on runs with an attached sink)                 *)

(** Why channel [c] — valid but not ready at this cycle's fixpoint — is
    refused, judged from the consumer's own state.  Pure reads: no chaos
    stream is consulted (recomputing a permuted arbiter grant would
    double-count the chaos counters), so classification never perturbs
    the run it observes. *)
let classify_stall t (c : Graph.channel) =
  let dst = c.Graph.dst.unit_id in
  let k = Graph.kind_of t.g dst in
  match (k, t.state.(dst)) with
  | Operator { ports; _ }, S_pipeline { stages } ->
      let head = stages.(Array.length stages - 1) in
      if head <> None && not (out_ready t dst 0) then Pipeline_full
      else if not (all_inputs_valid t dst ports) then Operand_starved
      else Backpressure
  | Load _, S_pipeline { stages } ->
      let head = stages.(Array.length stages - 1) in
      if head <> None && not (out_ready t dst 0) then Pipeline_full
      else if t.requesting.(dst) && not (granted t dst) then Contention
      else Backpressure
  | Store _, S_pipeline { stages } ->
      if stages.(0) <> None && not (out_ready t dst 0) then Pipeline_full
      else if not (all_inputs_valid t dst 2) then Operand_starved
      else if t.requesting.(dst) && not (granted t dst) then Contention
      else Backpressure
  | Join { inputs; _ }, _ ->
      if all_inputs_valid t dst inputs then Backpressure
      else begin
        (* A missing sibling fed by a drained credit counter is the
           credit stall of Section 4.3; any other missing sibling is
           ordinary operand starvation. *)
        let credit_starved = ref false in
        for p = 0 to inputs - 1 do
          if not (in_valid t dst p) then
            match Graph.in_channel t.g dst p with
            | Some sib -> (
                match t.state.(sib.Graph.src.unit_id) with
                | S_credit { count } when count = 0 -> credit_starved := true
                | _ -> ())
            | None -> ()
        done;
        if !credit_starved then No_credit else Operand_starved
      end
  | Arbiter _, _ ->
      (* If both wrapper outputs could accept, the only way to refuse a
         valid request is to serve (or reserve the turn for) another
         input. *)
      if out_ready t dst 0 && out_ready t dst 1 then Contention
      else Backpressure
  | Operator { ports; _ }, _ ->
      if not (all_inputs_valid t dst ports) then Operand_starved
      else Backpressure
  | (Mux _ | Branch _), _ -> Operand_starved
  | _ -> Backpressure

(** Emit this cycle's channel-level events: one [E_transfer] per firing
    channel — enriched with [E_credit] at credit-counter endpoints and
    [E_grant] at arbiter inputs — and one [E_stall] per refused token.
    Runs at the combinational fixpoint, before the sequential phase, so
    credit counts are the pre-transfer values. *)
let emit_channel_events t ~cycle f =
  Graph.iter_channels t.g (fun c ->
      let cid = c.Graph.id in
      if t.cvalid.(cid) then
        if t.cready.(cid) then begin
          f (E_transfer { cycle; cid; data = t.cdata.(cid) });
          (match t.state.(c.Graph.src.unit_id) with
          | S_credit { count } ->
              f (E_credit { cycle; uid = c.Graph.src.unit_id; delta = -1; count })
          | _ -> ());
          (match t.state.(c.Graph.dst.unit_id) with
          | S_credit { count } ->
              f (E_credit { cycle; uid = c.Graph.dst.unit_id; delta = 1; count })
          | _ -> ());
          match Graph.kind_of t.g c.Graph.dst.unit_id with
          | Arbiter _ ->
              f
                (E_grant
                   { cycle; uid = c.Graph.dst.unit_id; port = c.Graph.dst.port })
          | _ -> ()
        end
        else f (E_stall { cycle; cid; reason = classify_stall t c }))

(** Maximum occupancy a buffer reached during the run (its own initial
    tokens included); 0 for non-buffer units.  Profile data for the
    output-buffer shrinking pass (paper Section 6.4). *)
let buffer_high_water t uid =
  match t.state.(uid) with S_buffer b -> b.high_water | _ -> 0

type outcome = { stats : stats; sim : t }

(** Phases at which a {!run} [monitor] is consulted.  [After_settle]
    fires once the combinational fixpoint is reached: handshake signals
    are final for the cycle but no sequential state has advanced — the
    monitor sees which channels are about to fire and the pre-transfer
    unit state.  [After_step] fires once the sequential phase completes:
    the monitor sees the post-transfer state and can check the
    conservation deltas of the cycle. *)
type monitor_phase = After_settle | After_step

(** Per-cycle chaos prologue.  Re-draws the sink stalls, port jitter and
    arbiter permutations for this cycle and wakes every unit whose
    signals they touch (the worklist only tracks channel changes, not
    chaos decisions).  When the circuit has been quiet for two cycles,
    withdraws all perturbations ([chaos_suspended]) so that continued
    quiescence proves deadlock under the deterministic baseline
    semantics rather than under a transient perturbation; the quiet
    counter restarts so two further benign cycles are required. *)
let chaos_prologue t ch ~cycle ~quiet =
  if !quiet >= 2 && not t.chaos_suspended then begin
    t.chaos_suspended <- true;
    quiet := 0
  end;
  Chaos.begin_cycle ch ~cycle;
  (* Each perturbation family is gated by a flag precomputed at [create]
     (config bit && the relevant units exist), so a run whose config
     disables a family — or a graph without sinks/ports/arbiters — pays
     nothing for it per cycle. *)
  if t.chaos_stall then
    Array.iter
      (fun u ->
        let s = (not t.chaos_suspended) && Chaos.stalled ch ~uid:u in
        if s <> t.chaos_stalled.(u) then begin
          t.chaos_stalled.(u) <- s;
          enqueue t u
        end)
      t.chaos_sinks;
  if t.chaos_jitter then
    Array.iter
      (fun p ->
        let off =
          if t.chaos_suspended then 0
          else Chaos.port_offset ch ~port:p.pid ~width:(Array.length p.group)
        in
        if off <> p.joff then begin
          p.joff <- off;
          Array.iter (fun u -> enqueue t u) p.group
        end)
      t.ports;
  (* The tie-break permutation is a fresh function of the cycle, so
     every priority arbiter must be re-evaluated every cycle. *)
  if t.chaos_permute then Array.iter (fun u -> enqueue t u) t.chaos_arbiters

(** Simulate until quiescence or [max_cycles].  Completion means every
    Exit unit received at least one token before the circuit went quiet;
    quiescence without completion is a deadlock.  [chaos] perturbs the
    run adversarially (see {!Chaos}); a valid elastic circuit must
    produce the same exit values and still complete under any seed. *)
let run ?(max_cycles = 2_000_000) ?(poll_every = deadline_poll_period)
    ?deadline ?observer ?monitor ?chaos ?memory ?sink g =
  if poll_every < 1 then
    invalid_arg (Fmt.str "Engine.run: poll_every %d < 1" poll_every);
  let t = create ?chaos ?memory ?sink g in
  let monitor_call =
    match monitor with
    | None -> fun ~cycle:_ _ -> ()
    | Some f -> fun ~cycle phase -> f t ~cycle phase
  in
  let cycle = ref 0 in
  let quiet = ref 0 in
  let last_event = ref (-1) in
  let finished = ref None in
  Array.iter (fun u -> enqueue t u) t.live_units;
  while !finished = None do
    (* Cooperative watchdog: poll the wall-clock budget every
       [poll_every] cycles (cycle 0 included, so a fire-immediately
       deadline interrupts deterministically before any work happens). *)
    (match deadline with
    | Some d when !cycle mod poll_every = 0 && d () ->
        raise (Timeout { cycles = !cycle })
    | _ -> ());
    if !cycle >= max_cycles then finished := Some (Out_of_fuel max_cycles)
    else begin
      (match t.chaos with
      | Some ch -> chaos_prologue t ch ~cycle:!cycle ~quiet
      | None -> ());
      settle ?deadline ~cycle:!cycle t;
      monitor_call ~cycle:!cycle After_settle;
      (* Observability: channel-level events are derived at the settled
         fixpoint, exactly where the sanitizers read; runs without a
         sink pay one [None] branch per cycle. *)
      (match t.sink with
      | Some f -> emit_channel_events t ~cycle:!cycle f
      | None -> ());
      let moved_tokens = count_transfers ?observer ~cycle:!cycle t in
      t.transfers <- t.transfers + moved_tokens;
      let state_changed = ref false in
      (* Only the active set: stateless units have no sequential state to
         advance, so the per-cycle cost is O(stateful units). *)
      Array.iter
        (fun u ->
          if step_unit t u then begin
            state_changed := true;
            t.last_fire.(u) <- !cycle;
            (match t.sink with
            | Some f -> f (E_fire { cycle = !cycle; uid = u })
            | None -> ());
            enqueue t u
          end)
        t.step_units;
      monitor_call ~cycle:!cycle After_step;
      if moved_tokens > 0 || !state_changed then begin
        quiet := 0;
        last_event := !cycle;
        (* Progress resumed: perturbations come back next prologue. *)
        t.chaos_suspended <- false
      end
      else incr quiet;
      if !quiet >= 2 && (t.chaos = None || t.chaos_suspended) then begin
        let done_ = t.n_exit_received >= t.n_exits && t.n_exits > 0 in
        finished :=
          Some (if done_ then Completed !last_event else Deadlock !cycle)
      end;
      incr cycle
    end
  done;
  let status = Option.get !finished in
  {
    stats =
      {
        status;
        cycles = (match status with Completed c -> c + 1 | _ -> !cycle);
        transfers = t.transfers;
        exit_values = List.rev t.exit_values;
        perturbations =
          (match t.chaos with
          | Some ch -> Chaos.counters ch
          | None -> Chaos.zero_counters);
      };
    sim = t;
  }

let memory_of outcome = outcome.sim.memory

(* ------------------------------------------------------------------ *)
(* Post-mortem state accessors (for {!Forensics})                      *)

let graph_of t = t.g
let channel_valid t cid = t.cvalid.(cid)
let channel_ready t cid = t.cready.(cid)
let channel_data t cid = t.cdata.(cid)

(** Both valid and ready: this channel transfers a token this cycle
    (meaningful between settle and step, i.e. at [After_settle]). *)
let channel_fired t cid = fired t cid

(** The engine's incremental count of channels currently firing — what
    the per-cycle transfer accounting uses.  Sanitizers recount fired
    channels independently and compare against this. *)
let fired_count t = t.n_fired

(** Whether this run is chaos-perturbed (some checks — e.g. strict
    priority order — are only sound under deterministic semantics). *)
let has_chaos t = t.chaos <> None

(** Remaining credits of a credit counter, [None] for other units. *)
let credit_count t uid =
  match t.state.(uid) with S_credit c -> Some c.count | _ -> None

(** [(occupancy, slots)] of a buffer, [None] for other units. *)
let buffer_occupancy t uid =
  match t.state.(uid) with
  | S_buffer b -> Some (Queue.length b.q, b.slots)
  | _ -> None

(** Last cycle at which the unit's sequential state changed, [-1] if it
    never did. *)
let last_fire_cycle t uid = t.last_fire.(uid)

(** [(tokens in flight, depth)] of a pipelined unit, [None] otherwise. *)
let pipeline_busy t uid =
  match t.state.(uid) with
  | S_pipeline { stages } ->
      let n =
        Array.fold_left
          (fun n s -> if s <> None then n + 1 else n)
          0 stages
      in
      Some (n, Array.length stages)
  | _ -> None

(** For a rotation or phased arbiter: the input ports currently holding
    the turn (the only ports whose requests it would grant).  [None] for
    non-arbiters and priority arbiters (which never refuse a lone
    requester, so they never starve an input). *)
let arbiter_turn_holders t uid =
  match (Graph.kind_of t.g uid, t.state.(uid)) with
  | Arbiter { policy = Rotation order; _ }, S_arbiter { turn } ->
      let n = List.length order in
      if n = 0 then Some [] else Some [ List.nth order (turn mod n) ]
  | Arbiter { policy = Phased clusters; _ }, S_phased { turns } ->
      Some
        (List.mapi
           (fun i cluster ->
             let n = List.length cluster in
             if n = 0 then [] else [ List.nth cluster (turns.(i) mod n) ])
           clusters
        |> List.concat)
  | _ -> None

let pp_status ppf = function
  | Completed c -> Fmt.pf ppf "completed in %d cycles" c
  | Deadlock c -> Fmt.pf ppf "DEADLOCK at cycle %d" c
  | Out_of_fuel budget -> Fmt.pf ppf "out of fuel (budget %d)" budget

let is_deadlock outcome =
  match outcome.stats.status with Deadlock _ -> true | _ -> false

let is_completed outcome =
  match outcome.stats.status with Completed _ -> true | _ -> false
