(** Crash-isolated multi-process shard runner.

    Covers every layer of the supervision tree: the length-prefixed wire
    protocol (blocking channel I/O and the supervisor's incremental
    decoder, including torn and corrupt frames), deterministic chunk
    dealing, the torn-line-tolerant last-write-wins journal merge (as a
    qcheck property against serial journal bytes), the [Worker_lost] /
    [Worker_killed] taxonomy additions, atomic report writes, the
    reducer's wall-clock deadline, the engine's [poll_every] override —
    and end-to-end supervised campaigns with {e real forked workers}:
    clean runs byte-identical to serial, seeded chaos SIGKILLs
    mid-sweep, a crashing worker, a hard hang preempted by the
    heartbeat watchdog, and journal resume across runs.

    The test binary is its own worker: {!worker_main_if_requested} is
    called from [run_tests.ml] before alcotest parses argv. *)

open Helpers
module J = Exec.Jsonl
module W = Exec.Wire

(* ------------------------------------------------------------------ *)
(* Worker mode: the ops the forked test workers understand *)

let sum_to n = n * (n + 1) / 2

let spec_field name spec = Option.bind (J.member name spec) J.to_int

let worker_run _opts ~ctx spec =
  let op =
    Option.value ~default:"" (Option.bind (J.member "op" spec) J.to_str)
  in
  match op with
  | "hang" ->
      (* Never polls any deadline: only the supervisor's heartbeat
         watchdog can end this job. *)
      while true do
        ignore (Sys.opaque_identity 0)
      done;
      assert false
  | "exit" ->
      (* Die out from under the job, as a segfault or OOM kill would. *)
      exit (Option.value ~default:3 (spec_field "code" spec))
  | "sum" ->
      let n = Option.value ~default:0 (spec_field "n" spec) in
      let sleep_ms = Option.value ~default:0 (spec_field "sleep_ms" spec) in
      let o, attempts =
        Exec.Campaign.run_with_retries ~retries:0 (fun ~deadline ->
            ignore (deadline ());
            ctx.Exec.Supervisor.heartbeat ();
            if sleep_ms > 0 then Unix.sleepf (float_of_int sleep_ms /. 1000.);
            Exec.Outcome.Ok (sum_to n))
      in
      (Exec.Outcome.to_json (fun v -> J.Int v) o, attempts)
  | other -> failwith ("test worker: unknown op " ^ other)

let worker_main_if_requested () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "__worker" then begin
    let opts = Exec.Supervisor.worker_opts_of_argv Sys.argv in
    let run =
      (* The test binary doubles as both the shard-test worker and the
         serve worker, so Test_serve can boot a real in-process daemon
         whose pool execs this same executable. *)
      match opts.Exec.Supervisor.kind with
      | "serve" -> Serve.Job.worker_run opts
      | _ -> worker_run opts
    in
    Exec.Supervisor.worker_main ~opts ~run ()
  end

(* ------------------------------------------------------------------ *)
(* Small file helpers *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rm path = try Sys.remove path with Sys_error _ -> ()

(** A temp journal base plus cleanup of every derived file the
    supervisor or the tests may create next to it. *)
let with_temp_journal f =
  let path = Filename.temp_file "crush-shard" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      rm path;
      rm (path ^ ".serial");
      rm (Exec.Journal.quarantine_path path);
      rm (Exec.Journal.quarantine_path (path ^ ".serial"));
      List.iter
        (fun i -> rm (Exec.Shard.shard_journal path i))
        (List.init 8 Fun.id))
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Wire protocol *)

let sample_msgs =
  [
    W.Hello { pid = 42; shard = 3 };
    W.Job
      {
        key = "sum:07";
        spec = J.Obj [ ("op", J.String "sum"); ("n", J.Int 7) ];
      };
    W.Heartbeat { key = "sum:07" };
    W.Result
      {
        key = "sum:07";
        attempts = 2;
        outcome = J.Obj [ ("s", J.String "ok"); ("v", J.Int 28) ];
      };
    W.Shutdown;
  ]

let render m = J.to_string (W.to_json m)

(** The exact frame bytes [W.write] puts on the pipe. *)
let frame m =
  let payload = render m in
  Fmt.str "%d\n%s\n" (String.length payload) payload

let drain d =
  let rec go acc =
    match W.next d with Some m -> go (m :: acc) | None -> List.rev acc
  in
  go []

let test_wire_channel_roundtrip () =
  let path = Filename.temp_file "crush-wire" ".bin" in
  Fun.protect
    ~finally:(fun () -> rm path)
    (fun () ->
      let oc = open_out_bin path in
      List.iter (W.write oc) sample_msgs;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          List.iter
            (fun m ->
              match W.read ic with
              | Some got -> Alcotest.(check string) "frame" (render m) (render got)
              | None -> Alcotest.fail "short read mid-stream")
            sample_msgs;
          checkb "EOF -> None" (W.read ic = None)))

let test_decoder_byte_at_a_time () =
  (* The supervisor's incremental decoder must reassemble frames from
     arbitrarily small [Unix.read] chunks — one byte is the worst case. *)
  let stream = String.concat "" (List.map frame sample_msgs) in
  let d = W.create_decoder () in
  let got = ref [] in
  String.iter
    (fun c ->
      W.feed d (Bytes.make 1 c) ~len:1;
      got := !got @ drain d)
    stream;
  checki "all frames recovered" (List.length sample_msgs) (List.length !got);
  List.iter2
    (fun m g -> Alcotest.(check string) "frame" (render m) (render g))
    sample_msgs !got

let test_decoder_incomplete_frame () =
  let d = W.create_decoder () in
  let bytes = frame W.Shutdown in
  let half = String.length bytes / 2 in
  let feed s = W.feed d (Bytes.of_string s) ~len:(String.length s) in
  feed (String.sub bytes 0 half);
  checkb "torn frame -> None" (W.next d = None);
  feed (String.sub bytes half (String.length bytes - half));
  (match W.next d with
  | Some m -> Alcotest.(check string) "completed after the rest" (render W.Shutdown) (render m)
  | None -> Alcotest.fail "frame never completed");
  checkb "drained" (W.next d = None)

let corrupt_on s =
  let d = W.create_decoder () in
  W.feed d (Bytes.of_string s) ~len:(String.length s);
  match W.next d with
  | exception W.Corrupt _ -> true
  | Some _ | None -> false

let test_decoder_corrupt () =
  checkb "garbage length header" (corrupt_on "abc\n{}\n");
  checkb "payload with no msg shape" (corrupt_on "2\n{}\n");
  let alien = {|{"v":99,"msg":"shutdown"}|} in
  checkb "foreign protocol version"
    (corrupt_on (Fmt.str "%d\n%s\n" (String.length alien) alien))

(* ------------------------------------------------------------------ *)
(* Deterministic dealing *)

let test_deal_contract () =
  let xs = List.init 10 Fun.id in
  let chunks = Exec.Shard.deal ~shards:3 xs in
  checki "one chunk per shard" 3 (List.length chunks);
  checkb "concatenation preserves order" (List.concat chunks = xs);
  checkb "deterministic" (Exec.Shard.deal ~shards:3 xs = chunks);
  (* More shards than tasks: trailing chunks may be empty, nothing lost. *)
  let sparse = Exec.Shard.deal ~shards:5 [ 1; 2; 3 ] in
  checki "still one chunk per shard" 5 (List.length sparse);
  checkb "nothing lost" (List.concat sparse = [ 1; 2; 3 ]);
  checkb "shards < 1 rejected"
    (match Exec.Shard.deal ~shards:0 xs with
    | exception Invalid_argument _ -> true
    | _ -> false)

let qcheck_deal_balanced =
  qtest ~count:100 "shard: deal is balanced and order-preserving"
    QCheck2.Gen.(pair (int_range 1 8) (small_list small_int))
    (fun (shards, xs) ->
      let chunks = Exec.Shard.deal ~shards xs in
      let sizes = List.map List.length chunks in
      let mx = List.fold_left max 0 sizes
      and mn = List.fold_left min max_int sizes in
      List.length chunks = shards
      && List.concat chunks = xs
      && mx - mn <= 1)

(* ------------------------------------------------------------------ *)
(* Journal merge: serial-byte reproduction under duplicates + torn lines *)

let entry_line (e : Exec.Journal.entry) = Exec.Journal.entry_to_line e ^ "\n"

let qcheck_merge_reproduces_serial_bytes =
  qtest ~count:30 "shard: merge reproduces serial journal bytes"
    QCheck2.Gen.(pair (int_range 1 4) (list_size (int_range 1 25) small_nat))
    (fun (shards, vals) ->
      let entries =
        List.mapi
          (fun i v ->
            {
              Exec.Journal.key = Fmt.str "k%03d" i;
              attempts = 1;
              outcome = Exec.Outcome.to_json (fun x -> J.Int x) (Ok v);
            })
          vals
      in
      let serial = String.concat "" (List.map entry_line entries) in
      let base = Filename.temp_file "crush-merge" ".jsonl" in
      Fun.protect
        ~finally:(fun () ->
          rm base;
          List.iter
            (fun i -> rm (Exec.Shard.shard_journal base i))
            (List.init shards Fun.id))
        (fun () ->
          let chunks = Exec.Shard.deal ~shards entries in
          let n_stale = ref 0 in
          List.iteri
            (fun i chunk ->
              let oc = open_out_bin (Exec.Shard.shard_journal base i) in
              output_string oc "not a journal line\n";
              List.iteri
                (fun j (e : Exec.Journal.entry) ->
                  (* A superseded record from a killed-and-resent task:
                     the later line must win byte-for-byte. *)
                  if j mod 3 = 0 then begin
                    incr n_stale;
                    output_string oc
                      (entry_line { e with attempts = 7; outcome = J.Int (-1) })
                  end;
                  output_string oc (entry_line e))
                chunk;
              (* A worker SIGKILLed mid-append leaves a torn last line. *)
              (match chunk with
              | [] -> ()
              | e :: _ ->
                  let line = entry_line { e with Exec.Journal.key = "torn" } in
                  output_string oc (String.sub line 0 (String.length line / 2)));
              close_out oc)
            chunks;
          let tbl, dups =
            Exec.Shard.collect
              (List.init shards (Exec.Shard.shard_journal base))
          in
          let missing =
            Exec.Shard.write_merged ~into:base
              ~keys:(List.map (fun (e : Exec.Journal.entry) -> e.key) entries)
              tbl
          in
          missing = [] && dups >= !n_stale && read_file base = serial))

(* ------------------------------------------------------------------ *)
(* Taxonomy: the two process-death classes *)

let test_outcome_worker_classes () =
  let lost = Exec.Outcome.Worker_lost { shard = 2; reason = "signal 9" } in
  let killed = Exec.Outcome.Worker_killed { shard = 0; after_s = 1.5 } in
  Alcotest.(check string) "lost class" "worker-lost" (Exec.Outcome.class_name lost);
  Alcotest.(check string) "killed class" "worker-killed" (Exec.Outcome.class_name killed);
  checki "lost exit code" 17 (Exec.Outcome.exit_code lost);
  checki "killed exit code" 17 (Exec.Outcome.exit_code killed);
  checkb "lost is transient" (Exec.Outcome.is_transient lost);
  checkb "killed is transient" (Exec.Outcome.is_transient killed);
  List.iter
    (fun o ->
      let enc = Exec.Outcome.to_json (fun v -> J.Int v) o in
      checkb "json round-trip"
        (Exec.Outcome.of_json J.to_int enc = Some o))
    [ lost; killed ];
  let s =
    Exec.Outcome.summarize [ Ok 1; Job_timeout { cycles = 5 }; lost; killed ]
  in
  checki "worker death dominates the summary exit code" 17
    (Exec.Outcome.summary_exit_code s)

(* ------------------------------------------------------------------ *)
(* Atomic report writes *)

let test_write_atomic () =
  let dir = Filename.get_temp_dir_name () in
  let path = Filename.temp_file "crush-atomic" ".json" in
  let leftovers () =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           let full = Filename.concat dir f in
           String.length full > String.length path
           && String.sub full 0 (String.length path) = path)
  in
  Fun.protect
    ~finally:(fun () -> rm path)
    (fun () ->
      Exec.Journal.write_atomic path (fun oc -> output_string oc "hello\n");
      Alcotest.(check string) "content" "hello\n" (read_file path);
      checkb "no temp residue" (leftovers () = []);
      (* A failing writer must leave the old file intact and clean up. *)
      checkb "writer exception propagates"
        (match
           Exec.Journal.write_atomic path (fun _ -> failwith "boom")
         with
        | () -> false
        | exception Failure _ -> true);
      Alcotest.(check string) "old content survives" "hello\n" (read_file path);
      checkb "no temp residue after failure" (leftovers () = []))

(* ------------------------------------------------------------------ *)
(* Reducer wall-clock deadline: stop, keep best-so-far *)

let test_reduce_deadline_best_so_far () =
  let g () =
    Crush.Faults.inject
      (Crush.Paper_examples.fig1 ())
      (Crush.Faults.Overallocated_credits 2)
  in
  (* Count the deadline polls one baseline simulation consumes, then
     arm a deadline that comes due just after the baseline — fully
     deterministic, no wall clock involved. *)
  let base_polls = ref 0 in
  ignore
    (Exec.Reduce.simulate
       ~deadline:(fun () ->
         incr base_polls;
         false)
       ~max_cycles:20_000 (g ()));
  let budget = !base_polls + 1 in
  let polls = ref 0 in
  let deadline () =
    incr polls;
    !polls > budget
  in
  match Exec.Reduce.minimize ~max_cycles:20_000 ~deadline (g ()) with
  | None -> Alcotest.fail "deadline discarded the baseline"
  | Some r ->
      checkb "timed_out flagged" r.Exec.Reduce.timed_out;
      checkb "spent less than the default budget" (r.Exec.Reduce.evals < 250);
      (* The best-so-far circuit still trips the same invariant. *)
      (match Exec.Reduce.simulate ~max_cycles:20_000 r.Exec.Reduce.graph with
      | Some v ->
          Alcotest.(check string) "same invariant"
            r.Exec.Reduce.violation.Sim.Sanitizer.invariant
            v.Sim.Sanitizer.invariant
      | None -> Alcotest.fail "best-so-far no longer trips the invariant")

(* ------------------------------------------------------------------ *)
(* Engine poll_every override *)

let test_engine_poll_every () =
  let g () = (Crush.Paper_examples.fig1 ()).Crush.Paper_examples.graph in
  let polls = ref 0 in
  let deadline () =
    incr polls;
    !polls > 2
  in
  (match Sim.Engine.run ~poll_every:3 ~deadline (g ()) with
  | _ -> Alcotest.fail "counting deadline did not interrupt"
  | exception Sim.Engine.Timeout { cycles } ->
      checki "third poll at cycle 2 * poll_every" 6 cycles);
  checkb "poll_every < 1 rejected"
    (match Sim.Engine.run ~poll_every:0 (g ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* End to end: real forked workers *)

let worker_args = [ "__worker"; "--kind"; "test" ]

let sum_task ?(sleep_ms = 0) i =
  let n = i + 3 in
  {
    Exec.Supervisor.key = Fmt.str "sum:%02d" i;
    spec =
      J.Obj
        [
          ("op", J.String "sum"); ("n", J.Int n); ("sleep_ms", J.Int sleep_ms);
        ];
  }

(** The serial truth: the exact journal a [--jobs 1] supervised run
    writes for the same keys. *)
let write_serial_journal path tasks =
  let results =
    Exec.Campaign.map_outcomes ~jobs:1
      ~sup:(Exec.Campaign.supervision ~retries:0 ~journal:path ())
      ~key:(fun (t : Exec.Supervisor.task) -> t.key)
      ~encode:(fun v -> J.Int v)
      ~decode:J.to_int
      (fun ~deadline:_ (t : Exec.Supervisor.task) ->
        match spec_field "n" t.spec with
        | Some n -> Exec.Outcome.Ok (sum_to n)
        | None -> Exec.Outcome.Validation_error { message = "no n" })
      tasks
  in
  ignore results

let decode_outcome enc = Exec.Outcome.of_json J.to_int enc

let outcome_classes (r : Exec.Supervisor.result) =
  List.map
    (fun (k, _, enc) ->
      match decode_outcome enc with
      | Some o -> Exec.Outcome.class_name o
      | None -> Fmt.str "undecodable:%s" k)
    r.outcomes

let test_e2e_clean_matches_serial () =
  with_temp_journal (fun journal ->
      let tasks = List.init 8 (fun i -> sum_task i) in
      let r =
        Exec.Supervisor.run ~shards:2 ~retries:1 ~journal ~worker_args ~tasks
          ()
      in
      Alcotest.(check (list string))
        "all ok"
        (List.map (fun _ -> "ok") tasks)
        (outcome_classes r);
      checki "every task resolved" 8 (List.length r.outcomes);
      let serial = journal ^ ".serial" in
      write_serial_journal serial tasks;
      Alcotest.(check string) "merged journal bit-identical to serial" (read_file serial)
        (read_file journal);
      (* A rerun against the same journal resumes every key. *)
      let r2 =
        Exec.Supervisor.run ~shards:2 ~retries:1 ~journal ~worker_args ~tasks
          ()
      in
      checki "all keys resumed" 8 r2.stats.Exec.Supervisor.n_resumed;
      Alcotest.(check string) "journal unchanged by the resume" (read_file serial)
        (read_file journal))

let test_e2e_chaos_kills_mid_sweep () =
  with_temp_journal (fun journal ->
      (* Enough sleep per job that the seeded kill thresholds always
         find a busy victim mid-sweep. *)
      let tasks = List.init 12 (fun i -> sum_task ~sleep_ms:30 i) in
      let r =
        Exec.Supervisor.run ~shards:2 ~retries:2 ~seed:1 ~chaos_kills:2
          ~backoff_s:0.05 ~journal ~worker_args ~tasks ()
      in
      checki "both chaos kills delivered" 2
        r.stats.Exec.Supervisor.n_chaos_kills;
      checkb "killed workers respawned"
        (r.stats.Exec.Supervisor.n_respawns >= 1);
      checkb "all ok despite the kills"
        (List.for_all (fun c -> c = "ok") (outcome_classes r));
      let serial = journal ^ ".serial" in
      write_serial_journal serial tasks;
      Alcotest.(check string) "merged journal still bit-identical to serial"
        (read_file serial) (read_file journal))

let test_e2e_worker_lost_and_harvest () =
  with_temp_journal (fun journal ->
      let boom =
        {
          Exec.Supervisor.key = "boom";
          spec = J.Obj [ ("op", J.String "exit"); ("code", J.Int 3) ];
        }
      in
      let tasks = [ sum_task 0; boom; sum_task 1 ] in
      let r =
        Exec.Supervisor.run ~shards:1 ~retries:0 ~backoff_s:0.05 ~journal
          ~worker_args ~tasks ()
      in
      Alcotest.(check (list string))
        "classes"
        [ "ok"; "worker-lost"; "ok" ]
        (outcome_classes r);
      checkb "the death was not supervisor-initiated"
        (r.stats.Exec.Supervisor.n_lost >= 1);
      checki "poisoned past the retry budget" 1
        r.stats.Exec.Supervisor.n_poisoned;
      (* The completed-before-death key was harvested from the shard
         journal, and the poisoned key is quarantined. *)
      let q =
        Exec.Journal.load_quarantine (Exec.Journal.quarantine_path journal)
      in
      checkb "quarantine names the lost key"
        (List.exists (fun (k, _, c) -> k = "boom" && c = "worker-lost") q))

let test_e2e_hang_preempted_by_heartbeat () =
  with_temp_journal (fun journal ->
      let tasks =
        [
          {
            Exec.Supervisor.key = "hang:injected";
            spec = J.Obj [ ("op", J.String "hang") ];
          };
        ]
      in
      let r =
        Exec.Supervisor.run ~shards:1 ~retries:0 ~heartbeat_s:0.3
          ~backoff_s:0.05 ~max_respawns:1 ~journal ~worker_args ~tasks ()
      in
      checkb "hang classified worker-killed"
        (outcome_classes r = [ "worker-killed" ]);
      checkb "the kill was preemptive" (r.stats.Exec.Supervisor.n_preempted >= 1);
      match r.outcomes with
      | [ (_, _, enc) ] -> (
          match decode_outcome enc with
          | Some (Exec.Outcome.Worker_killed { after_s; _ }) ->
              checkb "after_s recorded" (after_s > 0.0)
          | _ -> Alcotest.fail "expected Worker_killed payload")
      | _ -> Alcotest.fail "expected exactly one outcome")

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "wire: channel write/read round-trip" `Quick
      test_wire_channel_roundtrip;
    Alcotest.test_case "wire: decoder reassembles byte-sized chunks" `Quick
      test_decoder_byte_at_a_time;
    Alcotest.test_case "wire: torn frame waits for the rest" `Quick
      test_decoder_incomplete_frame;
    Alcotest.test_case "wire: corrupt frames raise" `Quick test_decoder_corrupt;
    Alcotest.test_case "deal: contiguous, balanced, deterministic" `Quick
      test_deal_contract;
    qcheck_deal_balanced;
    qcheck_merge_reproduces_serial_bytes;
    Alcotest.test_case "outcome: worker-lost/killed taxonomy" `Quick
      test_outcome_worker_classes;
    Alcotest.test_case "journal: write_atomic leaves no residue" `Quick
      test_write_atomic;
    Alcotest.test_case "reduce: deadline keeps the best-so-far" `Quick
      test_reduce_deadline_best_so_far;
    Alcotest.test_case "engine: poll_every overrides the poll period" `Quick
      test_engine_poll_every;
    Alcotest.test_case "e2e: sharded run bit-identical to serial + resume"
      `Quick test_e2e_clean_matches_serial;
    Alcotest.test_case "e2e: chaos kills mid-sweep stay bit-identical" `Quick
      test_e2e_chaos_kills_mid_sweep;
    Alcotest.test_case "e2e: worker death harvested and quarantined" `Quick
      test_e2e_worker_lost_and_harvest;
    Alcotest.test_case "e2e: hard hang preempted by heartbeat watchdog" `Quick
      test_e2e_hang_preempted_by_heartbeat;
  ]
