(** Tests of the mini-C frontend: lexer, parser, semantic analysis,
    unrolling, and circuit generation (validated by simulation). *)

open Minic
open Helpers

(* ------------------------------------------------------------------ *)
(* Lexer *)

let toks src = Lexer.tokenize src

let test_lexer_basics () =
  (match toks "for (int i = 0; i < 10; i++) { }" with
  | Lexer.[
      KW_for; LPAREN; KW_int; IDENT "i"; ASSIGN; INT 0; SEMI; IDENT "i"; LT;
      INT 10; SEMI; IDENT "i"; PLUSPLUS; RPAREN; LBRACE; RBRACE; EOF;
    ] ->
      ()
  | _ -> Alcotest.fail "token stream mismatch");
  checki "count" 5 (List.length (toks "a += 1.5;"))

let test_lexer_floats () =
  (match toks "0.5 2.0 1e3" with
  | Lexer.[ FLOAT a; FLOAT b; FLOAT c; EOF ] ->
      checkb "0.5" (a = 0.5);
      checkb "2.0" (b = 2.0);
      checkb "1e3" (c = 1000.0)
  | _ -> Alcotest.fail "float stream mismatch")

let test_lexer_comments () =
  checki "line comment" 2 (List.length (toks "x // the rest vanishes\n"));
  checki "block comment" 3 (List.length (toks "a /* zap */ b"))

let test_lexer_two_char_ops () =
  (match toks "<= >= == != && || ++ += -= *=" with
  | Lexer.[ LE; GE; EQEQ; NEQ; ANDAND; OROR; PLUSPLUS; PLUSEQ; MINUSEQ; STAREQ; EOF ]
    ->
      ()
  | _ -> Alcotest.fail "operator stream mismatch")

let test_lexer_errors () =
  (try
     ignore (toks "a $ b");
     Alcotest.fail "no error"
   with Frontend.Error e ->
     checkb "lex phase" (e.Frontend.phase = Frontend.Lex);
     check Alcotest.(option string) "offending token" (Some "$") e.Frontend.token);
  try
    ignore (toks "/* unterminated");
    Alcotest.fail "no error"
  with Frontend.Error e -> checkb "lex phase" (e.Frontend.phase = Frontend.Lex)

let test_located_errors () =
  (* Errors carry 1-based line/column of the offending token. *)
  (try
     ignore (toks "ok;\n  ?");
     Alcotest.fail "lexer accepted '?'"
   with Frontend.Error e ->
     check
       Alcotest.(option (pair int int))
       "lexer loc" (Some (2, 3))
       (Option.map (fun l -> (l.Frontend.line, l.Frontend.column)) e.Frontend.loc));
  try
    ignore (Parser.parse_kernel "void f() {\n  int x = ;\n}");
    Alcotest.fail "parser accepted 'int x = ;'"
  with Frontend.Error e ->
    checkb "parse phase" (e.Frontend.phase = Frontend.Parse);
    check Alcotest.(option string) "parse token" (Some ";") e.Frontend.token;
    check
      Alcotest.(option (pair int int))
      "parser loc" (Some (2, 11))
      (Option.map (fun l -> (l.Frontend.line, l.Frontend.column)) e.Frontend.loc)

(* ------------------------------------------------------------------ *)
(* Parser *)

let parse src = Parser.parse_kernel src

let test_parser_kernel_shape () =
  let k = parse "void f(float a[4], int b) { }" in
  check Alcotest.string "name" "f" k.Ast.k_name;
  checki "params" 2 (List.length k.Ast.k_params);
  (match k.Ast.k_params with
  | [ a; b ] ->
      check Alcotest.(list int) "dims" [ 4 ] a.Ast.p_dims;
      check Alcotest.(list int) "scalar" [] b.Ast.p_dims
  | _ -> Alcotest.fail "params")

let test_parser_precedence () =
  let k = parse "void f() { int x = 1 + 2 * 3; }" in
  match k.Ast.k_body with
  | [ Ast.Decl (_, _, Some (Ast.Bin (Ast.Add, Ast.Int_lit 1, Ast.Bin (Ast.Mul, _, _)))) ]
    ->
      ()
  | _ -> Alcotest.fail "precedence"

let test_parser_compound_assign () =
  let k = parse "void f(float a[2]) { a[0] += 1.0; }" in
  match k.Ast.k_body with
  | [ Ast.Assign (Ast.Lv_index ("a", _), Ast.Bin (Ast.Add, Ast.Index ("a", _), _)) ]
    ->
      ()
  | _ -> Alcotest.fail "+= expansion"

let test_parser_loop_forms () =
  let k = parse "void f() { for (i = 2; i <= 9; i += 3) { } }" in
  match k.Ast.k_body with
  | [ Ast.For f ] ->
      checkb "init" (f.Ast.init = Ast.Int_lit 2);
      checkb "cmp" (f.Ast.cmp = Ast.Cmp_le);
      checki "step" 3 f.Ast.step
  | _ -> Alcotest.fail "loop"

let test_parser_if_else () =
  let k = parse "void f() { int x = 0; if (x < 1) { x = 1; } else { x = 2; } }" in
  match k.Ast.k_body with
  | [ _; Ast.If (_, [ _ ], [ _ ]) ] -> ()
  | _ -> Alcotest.fail "if/else"

let test_parser_errors () =
  let bad src =
    try
      ignore (parse src);
      Alcotest.failf "parsed bad input: %s" src
    with Frontend.Error _ -> ()
  in
  bad "void f() { for (i = 0; j < 3; i++) { } }";  (* wrong cond var *)
  bad "void f() { x 5; }";
  bad "void f(float a[n]) { }";                    (* non-constant dim *)
  bad "void f() { } trailing"

(* ------------------------------------------------------------------ *)
(* Sema *)

let check_src src = Sema.check (parse src)

let test_sema_accepts () =
  ignore
    (check_src
       {|void f(float a[4][4], float y[4]) {
           float alpha = 1.5;
           for (int i = 0; i < 4; i++) {
             float s = 0.0;
             for (int j = 0; j < 4; j++) { s += a[i][j] * alpha; }
             y[i] = s;
           }
         }|})

let test_sema_rejects () =
  let bad msg src =
    try
      ignore (check_src src);
      Alcotest.failf "sema accepted %s" msg
    with Frontend.Error e -> checkb msg (e.Frontend.phase = Frontend.Sema)
  in
  bad "undeclared" "void f() { x = 1; }";
  bad "redeclaration" "void f() { int x = 0; float x = 1.0; }";
  bad "array as scalar" "void f(float a[2]) { a = 1.0; }";
  bad "dim mismatch" "void f(float a[2][2]) { a[0] = 1.0; }";
  bad "float index" "void f(float a[2]) { a[0.5] = 1.0; }";
  bad "bool arith" "void f() { int x = (1 < 2) + 3; }";
  bad "if condition" "void f() { if (3) { } }";
  bad "float to int" "void f() { int x = 1.5; }";
  bad "loop shadows" "void f() { int i = 0; for (int i = 0; i < 2; i++) { } }";
  bad "zero step" "void f() { for (int i = 0; i < 2; i += 0) { } }"

let test_sema_promotion () =
  (* int expressions may initialize floats and mix into float arith. *)
  ignore (check_src "void f() { float x = 1; float y = x * 2; }")

(* ------------------------------------------------------------------ *)
(* Unrolling *)

let test_unroll_full () =
  let k = parse "void f(float a[6]) { for (int i = 0; i < 6; i++) { a[i] = 1.0; } }" in
  let k' = Unroll.unroll_innermost ~factor:6 k in
  checki "six copies, no loop" 6 (List.length k'.Ast.k_body);
  checkb "no For remains"
    (List.for_all (function Ast.For _ -> false | _ -> true) k'.Ast.k_body)

let test_unroll_partial () =
  let k = parse "void f(float a[6]) { for (int i = 0; i < 6; i++) { a[i] = 1.0; } }" in
  let k' = Unroll.unroll_innermost ~factor:2 k in
  match k'.Ast.k_body with
  | [ Ast.For f ] ->
      checki "widened step" 2 f.Ast.step;
      checki "two copies" 2 (List.length f.Ast.body)
  | _ -> Alcotest.fail "partial unroll shape"

let test_unroll_rejects () =
  let k = parse "void f(float a[5]) { for (int i = 0; i < 5; i++) { a[i] = 1.0; } }" in
  (try
     ignore (Unroll.unroll_innermost ~factor:2 k);
     Alcotest.fail "accepted non-dividing factor"
   with Unroll.Error _ -> ());
  let k =
    parse "void f(float a[4]) { for (int i = 0; i < 4; i++) { float t = 1.0; a[i] = t; } }"
  in
  try
    ignore (Unroll.unroll_innermost ~factor:4 k);
    Alcotest.fail "accepted body with locals"
  with Unroll.Error _ -> ()

let test_unroll_preserves_semantics () =
  (* Unrolled gesummv computes the same values as the rolled version. *)
  let bench, ast = Kernels.Registry.gesummv_unrolled ~n:10 ~factor:5 in
  let c = Minic.Codegen.compile ast in
  let v = Kernels.Harness.run_circuit bench c.Minic.Codegen.graph in
  checkb "unrolled matches reference" v.Kernels.Harness.functionally_correct

(* ------------------------------------------------------------------ *)
(* Codegen + simulation of small programs *)

let simulate_source ?strategy src ~mems =
  let c = compile ?strategy src in
  let memory = Sim.Memory.of_graph c.Minic.Codegen.graph in
  List.iter (fun (name, data) -> Sim.Memory.set_floats memory name data) mems;
  let out = run_ok ~memory c.Minic.Codegen.graph in
  (c, memory, out)

let test_codegen_sum_loop () =
  let src =
    {|void f(float a[8], float out[1]) {
        float s = 0.0;
        for (int i = 0; i < 8; i++) { s += a[i]; }
        out[0] = s;
      }|}
  in
  let data = Array.init 8 (fun i -> float_of_int i *. 0.5) in
  let _, memory, _ = simulate_source src ~mems:[ ("a", data) ] in
  let want = Array.fold_left ( +. ) 0.0 data in
  checkb "sum" (Float.abs ((Sim.Memory.get_floats memory "out").(0) -. want) < 1e-9)

let test_codegen_nested_loops () =
  let src =
    {|void f(float a[3][4], float out[1]) {
        float s = 0.0;
        for (int i = 0; i < 3; i++) {
          for (int j = 0; j < 4; j++) { s += a[i][j]; }
        }
        out[0] = s;
      }|}
  in
  let data = Array.init 12 (fun i -> float_of_int (i + 1)) in
  let c, memory, _ = simulate_source src ~mems:[ ("a", data) ] in
  checkb "sum 1..12" ((Sim.Memory.get_floats memory "out").(0) = 78.0);
  checki "two loops" 2 (List.length c.Minic.Codegen.all_loops);
  check Alcotest.(list int) "inner loop critical" [ 1 ]
    c.Minic.Codegen.critical_loops

let test_codegen_triangular_loop () =
  let src =
    {|void f(int out[1]) {
        int s = 0;
        for (int i = 0; i < 5; i++) {
          for (int j = 0; j <= i; j++) { s = s + 1; }
        }
        out[0] = s;
      }|}
  in
  let _, memory, _ = simulate_source src ~mems:[] in
  checkb "1+2+3+4+5" ((Sim.Memory.get_floats memory "out").(0) = 15.0)

let test_codegen_conditional () =
  let src =
    {|void f(float a[8], float out[1]) {
        float pos = 0.0;
        float neg = 0.0;
        for (int i = 0; i < 8; i++) {
          float d = a[i];
          if (d >= 0.0) { pos += d; } else { neg += d; }
        }
        out[0] = pos - neg;
      }|}
  in
  let data = [| 1.0; -2.0; 3.0; -4.0; 5.0; -6.0; 7.0; -8.0 |] in
  let c, memory, _ = simulate_source src ~mems:[ ("a", data) ] in
  checkb "pos - neg = 36" ((Sim.Memory.get_floats memory "out").(0) = 36.0);
  checkb "conditional BBs recorded" (c.Minic.Codegen.conditional_bbs <> [])

let test_codegen_zero_trip_loop () =
  let src =
    {|void f(float out[1]) {
        float s = 5.0;
        for (int i = 0; i < 0; i++) { s += 1.0; }
        out[0] = s;
      }|}
  in
  let _, memory, _ = simulate_source src ~mems:[] in
  checkb "body never ran" ((Sim.Memory.get_floats memory "out").(0) = 5.0)

let test_codegen_neg_and_not () =
  let src =
    {|void f(float out[2]) {
        float x = -1.5;
        out[0] = -x;
        int c = 0;
        if (!(x > 0.0)) { c = 1; }
        out[1] = c;
      }|}
  in
  let _, memory, _ = simulate_source src ~mems:[] in
  let out = Sim.Memory.get_floats memory "out" in
  checkb "neg" (out.(0) = 1.5);
  checkb "not" (out.(1) = 1.0)

let test_codegen_strategies_agree () =
  let src = Kernels.Registry.gsum.Kernels.Registry.source in
  let run strategy =
    let c = compile ~strategy src in
    let v = Kernels.Harness.run_circuit Kernels.Registry.gsum c.Minic.Codegen.graph in
    checkb "correct" v.Kernels.Harness.functionally_correct;
    v.Kernels.Harness.cycles
  in
  let bb = run Minic.Codegen.Bb_ordered in
  let fast = run Minic.Codegen.Fast_token in
  checkb "fast token is no slower" (fast <= bb)

let test_codegen_bb_tags () =
  let c = compile Kernels.Registry.atax.Kernels.Registry.source in
  let has_bb = ref false in
  Dataflow.Graph.iter_units c.Minic.Codegen.graph (fun u ->
      if u.Dataflow.Graph.bb >= 0 then has_bb := true);
  checkb "BB-ordered circuits carry bb tags" !has_bb;
  let c' =
    compile ~strategy:Minic.Codegen.Fast_token
      Kernels.Registry.atax.Kernels.Registry.source
  in
  Dataflow.Graph.iter_units c'.Minic.Codegen.graph (fun u ->
      checkb "fast-token has no bb tags" (u.Dataflow.Graph.bb = -1))

let test_codegen_rejects_scalar_params () =
  try
    ignore (compile "void f(float x) { }");
    Alcotest.fail "accepted scalar parameter"
  with Minic.Codegen.Error _ -> ()

let suite =
  [
    ("lexer: basics", `Quick, test_lexer_basics);
    ("lexer: floats", `Quick, test_lexer_floats);
    ("lexer: comments", `Quick, test_lexer_comments);
    ("lexer: two-char ops", `Quick, test_lexer_two_char_ops);
    ("lexer: errors", `Quick, test_lexer_errors);
    ("frontend: located errors", `Quick, test_located_errors);
    ("parser: kernel shape", `Quick, test_parser_kernel_shape);
    ("parser: precedence", `Quick, test_parser_precedence);
    ("parser: compound assign", `Quick, test_parser_compound_assign);
    ("parser: loop forms", `Quick, test_parser_loop_forms);
    ("parser: if/else", `Quick, test_parser_if_else);
    ("parser: errors", `Quick, test_parser_errors);
    ("sema: accepts", `Quick, test_sema_accepts);
    ("sema: rejects", `Quick, test_sema_rejects);
    ("sema: promotion", `Quick, test_sema_promotion);
    ("unroll: full", `Quick, test_unroll_full);
    ("unroll: partial", `Quick, test_unroll_partial);
    ("unroll: rejects", `Quick, test_unroll_rejects);
    ("unroll: semantics", `Quick, test_unroll_preserves_semantics);
    ("codegen: sum loop", `Quick, test_codegen_sum_loop);
    ("codegen: nested loops", `Quick, test_codegen_nested_loops);
    ("codegen: triangular loop", `Quick, test_codegen_triangular_loop);
    ("codegen: conditional", `Quick, test_codegen_conditional);
    ("codegen: zero-trip loop", `Quick, test_codegen_zero_trip_loop);
    ("codegen: neg/not", `Quick, test_codegen_neg_and_not);
    ("codegen: strategies agree", `Quick, test_codegen_strategies_agree);
    ("codegen: bb tags", `Quick, test_codegen_bb_tags);
    ("codegen: scalar params", `Quick, test_codegen_rejects_scalar_params);
  ]
