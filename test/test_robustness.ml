(** Adversarial robustness: chaos invariance of valid circuits, fault
    injection producing detected deadlocks, forensics pinning the right
    cyclic core, and the structural-validation hardening. *)

open Helpers
open Dataflow
open Dataflow.Types

let is_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let is_infix needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Chaos engine *)

let fig1c () =
  let b = Crush.Paper_examples.fig1 () in
  Crush.Paper_examples.share_pair b
    ~ops:[ b.Crush.Paper_examples.m1; b.Crush.Paper_examples.m2 ]
    `Credits

let run_fig1c ?chaos () =
  let g = fig1c () in
  let memory = Sim.Memory.of_graph g in
  let out = Sim.Engine.run ?chaos ~memory g in
  (out, Sim.Memory.get_floats memory "a")

let test_chaos_deterministic () =
  (* One seed, one behaviour: bit-equal memory and equal cycle counts. *)
  let chaos = Sim.Chaos.default ~seed:7 in
  let out1, mem1 = run_fig1c ~chaos () in
  let out2, mem2 = run_fig1c ~chaos () in
  checkb "completed" (Sim.Engine.is_completed out1);
  checki "same cycles" (cycles out1) (cycles out2);
  checkb "same memory" (mem1 = mem2)

let test_chaos_output_invariance () =
  (* The elasticity claim: any chaos seed, same exit values and memory. *)
  let _, baseline = run_fig1c () in
  for seed = 0 to 7 do
    let out, mem = run_fig1c ~chaos:(Sim.Chaos.default ~seed) () in
    checkb (Fmt.str "seed %d completed" seed) (Sim.Engine.is_completed out);
    checkb (Fmt.str "seed %d memory identical" seed) (mem = baseline)
  done

let test_chaos_delays_completion () =
  (* Backpressure stalls cannot change results but must cost cycles. *)
  let out0, _ = run_fig1c () in
  let out, mem =
    run_fig1c ~chaos:(Sim.Chaos.stalls_only ~seed:3 ~stall_prob:0.5) ()
  in
  let _, baseline = run_fig1c () in
  checkb "completed under heavy stalls" (Sim.Engine.is_completed out);
  checkb "slower than unperturbed" (cycles out > cycles out0);
  checkb "memory identical" (mem = baseline)

let test_chaos_kernel_correct () =
  (* A real compiled kernel, CRUSH-shared, under full chaos. *)
  let bench = Kernels.Registry.find "gsum" in
  let c = compile bench.Kernels.Registry.source in
  ignore
    (Crush.Share.crush c.Minic.Codegen.graph
       ~critical_loops:c.Minic.Codegen.critical_loops);
  for seed = 1 to 3 do
    let v =
      Kernels.Harness.run_circuit
        ~chaos:(Sim.Chaos.default ~seed)
        bench c.Minic.Codegen.graph
    in
    checkb
      (Fmt.str "gsum chaos seed %d correct" seed)
      v.Kernels.Harness.functionally_correct
  done

let test_chaos_decisions_pure () =
  (* Decisions are pure hashes: re-reading within a cycle is stable,
     across cycles it varies. *)
  let ch = Sim.Chaos.make (Sim.Chaos.default ~seed:11) in
  Sim.Chaos.begin_cycle ch ~cycle:5;
  checkb "stall stable in a cycle"
    (Sim.Chaos.stalled ch ~uid:3 = Sim.Chaos.stalled ch ~uid:3);
  checki "latency static over run"
    (Sim.Chaos.extra_latency ch ~uid:4)
    (Sim.Chaos.extra_latency ch ~uid:4);
  let offs =
    List.init 50 (fun c ->
        Sim.Chaos.begin_cycle ch ~cycle:c;
        Sim.Chaos.port_offset ch ~port:0 ~width:3)
  in
  checkb "port jitter in range" (List.for_all (fun o -> o >= 0 && o < 3) offs);
  checkb "port jitter varies" (List.exists (fun o -> o <> List.hd offs) offs);
  Sim.Chaos.begin_cycle ch ~cycle:9;
  let perm = Sim.Chaos.permute_priority ch ~uid:2 [ 0; 1; 2; 3 ] in
  checkb "permutation is a permutation"
    (List.sort compare perm = [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Fault injection + forensics *)

let analyze_fault fault =
  let built = Crush.Paper_examples.fig1 () in
  let g = Crush.Faults.inject built fault in
  let out = Sim.Engine.run ~max_cycles:100_000 g in
  checkb
    (Fmt.str "%s deadlocks" (Crush.Faults.describe fault))
    (Sim.Engine.is_deadlock out);
  match Sim.Forensics.analyze out with
  | Some r -> (g, r)
  | None -> Alcotest.fail "deadlock without forensics report"

let core_labels g (r : Sim.Forensics.report) =
  List.concat_map
    (fun (core : Sim.Forensics.core) ->
      List.map (Graph.label_of g) core.Sim.Forensics.members)
    r.Sim.Forensics.cores

let test_fault_naive_forensics () =
  let g, r = analyze_fault Crush.Faults.Creditless_naive in
  checkb "wrapper in cyclic core"
    (Sim.Forensics.core_contains r (Crush.Faults.in_wrapper g));
  (* The Fig. 1b anatomy: a full single-slot output buffer sustains the
     head-of-line block, and the report shows its occupancy. *)
  let labels = core_labels g r in
  checkb "an output buffer is in the core"
    (List.exists (fun l -> String.length l >= 3 && String.sub l 0 3 = "ob_") labels);
  let text = Fmt.str "%a" Sim.Forensics.pp r in
  checkb "report shows buffer occupancy"
    (is_infix "(full)" text
    || is_infix "buffer 1/1" text)

let test_fault_rotation_forensics () =
  let g, r = analyze_fault Crush.Faults.Reversed_rotation in
  checkb "wrapper in cyclic core"
    (Sim.Forensics.core_contains r (Crush.Faults.in_wrapper g));
  let labels = core_labels g r in
  let has p = List.exists (fun l -> is_prefix p l) labels in
  (* Figure 1d: the starved arbiter and the idle shared unit are both in
     the cycle. *)
  checkb "arbiter in core" (has "arb_");
  checkb "shared unit in core" (has "shared_")

let test_fault_overallocation_forensics () =
  let g, r = analyze_fault (Crush.Faults.Overallocated_credits 2) in
  checkb "wrapper in cyclic core"
    (Sim.Forensics.core_contains r (Crush.Faults.in_wrapper g))

let test_forensics_crossed_joins () =
  (* The classic crossed-join deadlock: both joins must be in one core. *)
  let g = Graph.create () in
  let e1 = Graph.add_unit g (Entry (VInt 1)) in
  let e2 = Graph.add_unit g (Entry (VInt 2)) in
  let j1 = Graph.add_unit g (Join { inputs = 2; keep = [| true; true |] }) in
  let j2 = Graph.add_unit g (Join { inputs = 2; keep = [| true; true |] }) in
  let r1 = Graph.add_unit g (Operator { op = Pass; latency = 1; ports = 1 }) in
  let r2 = Graph.add_unit g (Operator { op = Pass; latency = 1; ports = 1 }) in
  let f1 = Graph.add_unit g (Fork { outputs = 2; lazy_ = false }) in
  let f2 = Graph.add_unit g (Fork { outputs = 2; lazy_ = false }) in
  let x = Graph.add_unit g Exit in
  let sink = Graph.add_unit g Sink in
  ignore (Graph.connect g (e1, 0) (j1, 0));
  ignore (Graph.connect g (e2, 0) (j2, 0));
  ignore (Graph.connect g (j1, 0) (r1, 0));
  ignore (Graph.connect g (j2, 0) (r2, 0));
  ignore (Graph.connect g (r1, 0) (f1, 0));
  ignore (Graph.connect g (r2, 0) (f2, 0));
  ignore (Graph.connect g (f1, 0) (j2, 1));
  ignore (Graph.connect g (f2, 0) (j1, 1));
  ignore (Graph.connect g (f1, 1) (x, 0));
  ignore (Graph.connect g (f2, 1) (sink, 0));
  let out = run_deadlock g in
  match Sim.Forensics.analyze out with
  | None -> Alcotest.fail "no forensics report"
  | Some r ->
      checkb "one core" (List.length r.Sim.Forensics.cores = 1);
      checkb "both joins in the core"
        (Sim.Forensics.core_contains r (fun u -> u = j1)
        && Sim.Forensics.core_contains r (fun u -> u = j2));
      (* Entries hold tokens but are not part of the cycle. *)
      checkb "entries not in the core"
        (not
           (Sim.Forensics.core_contains r (fun u -> u = e1 || u = e2)))

let test_forensics_none_when_completed () =
  let out = run_ok (int_stream (fun b i -> Builder.sink b i)) in
  checkb "no report on completion" (Sim.Forensics.analyze out = None)

let test_forensics_dot_overlay () =
  let g, r = analyze_fault Crush.Faults.Creditless_naive in
  let dot = Sim.Forensics.to_dot g r in
  checkb "core painted red" (is_infix "color=red" dot);
  checkb "occupancy annotated" (is_infix "buffer" dot)

(* ------------------------------------------------------------------ *)
(* Validation hardening *)

let test_validate_dangling_channel () =
  let g = int_stream (fun b i -> Builder.sink b i) in
  Validate.check_exn g;
  (* Forge a buggy rewriting pass: kill a unit without disconnecting. *)
  let victim =
    Graph.fold_units g
      (fun acc u -> match u.Graph.kind with Sink -> u.Graph.uid | _ -> acc)
      (-1)
  in
  (Graph.unit_exn g victim).Graph.dead <- true;
  let issues = Validate.issues g in
  checkb "dangling channel flagged"
    (List.exists
       (fun (i : Validate.issue) ->
         is_infix "dead unit" i.Validate.message)
       issues);
  (* And the simulator refuses the malformed graph at construction. *)
  checkb "engine rejects it"
    (match Sim.Engine.run g with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_validate_double_connected () =
  let g = Graph.create () in
  let e1 = Graph.add_unit g (Entry (VInt 1)) in
  let e2 = Graph.add_unit g (Entry (VInt 2)) in
  let s1 = Graph.add_unit g Sink in
  let s2 = Graph.add_unit g Sink in
  ignore (Graph.connect g (e1, 0) (s1, 0));
  let c2 = Graph.connect g (e2, 0) (s2, 0) in
  Validate.check_exn g;
  (* Forge: re-point the second channel at the already-taken port. *)
  (Graph.channel_exn g c2).Graph.dst <- { Graph.unit_id = s1; port = 0 };
  checkb "double connection flagged"
    (List.exists
       (fun (i : Validate.issue) ->
         is_infix "double-connected" i.Validate.message)
       (Validate.issues g))

let test_out_of_fuel_carries_budget () =
  let g = int_stream ~n:1_000_000 (fun b i -> Builder.sink b i) in
  let out = Sim.Engine.run ~max_cycles:217 g in
  match out.Sim.Engine.stats.Sim.Engine.status with
  | Sim.Engine.Out_of_fuel budget -> checki "budget reported" 217 budget
  | st -> Alcotest.failf "expected out of fuel, got %a" Sim.Engine.pp_status st

let test_chaos_counters () =
  (* Unperturbed runs report all-zero perturbation counters. *)
  let out0, _ = run_fig1c () in
  checkb "no chaos, zero counters"
    (out0.Sim.Engine.stats.Sim.Engine.perturbations = Sim.Chaos.zero_counters);
  (* Across a small seed sweep on a CRUSH-shared kernel, every
     perturbation family must actually bite at least once — otherwise
     the chaos harness is shadow-boxing. *)
  let b = Kernels.Registry.find "atax" in
  let add (a : Sim.Chaos.counters) (c : Sim.Chaos.counters) =
    Sim.Chaos.
      {
        stalls = a.stalls + c.stalls;
        port_jitters = a.port_jitters + c.port_jitters;
        arbiter_permutes = a.arbiter_permutes + c.arbiter_permutes;
        extra_stages = a.extra_stages + c.extra_stages;
      }
  in
  let total =
    List.fold_left
      (fun acc seed ->
        let c = Minic.Codegen.compile_source b.Kernels.Registry.source in
        ignore
          (Crush.Share.crush c.Minic.Codegen.graph
             ~critical_loops:c.Minic.Codegen.critical_loops);
        let out, v =
          Kernels.Harness.run_circuit_full
            ~chaos:(Sim.Chaos.default ~seed) b c.Minic.Codegen.graph
        in
        checkb
          (Fmt.str "seed %d correct" seed)
          v.Kernels.Harness.functionally_correct;
        add acc out.Sim.Engine.stats.Sim.Engine.perturbations)
      Sim.Chaos.zero_counters [ 0; 1; 2 ]
  in
  checkb "stalls fired" (total.Sim.Chaos.stalls > 0);
  checkb "port jitter fired" (total.Sim.Chaos.port_jitters > 0);
  checkb "arbiter permutation fired" (total.Sim.Chaos.arbiter_permutes > 0);
  checkb "latency inflation fired" (total.Sim.Chaos.extra_stages > 0)

let suite =
  [
    ("chaos: deterministic per seed", `Quick, test_chaos_deterministic);
    ("chaos: every perturbation kind fires", `Slow, test_chaos_counters);
    ("chaos: outputs invariant across seeds", `Quick, test_chaos_output_invariance);
    ("chaos: stalls delay but preserve results", `Quick, test_chaos_delays_completion);
    ("chaos: shared kernel stays correct", `Slow, test_chaos_kernel_correct);
    ("chaos: decision streams are pure", `Quick, test_chaos_decisions_pure);
    ("faults: naive sharing caught with anatomy", `Quick, test_fault_naive_forensics);
    ("faults: reversed rotation caught", `Quick, test_fault_rotation_forensics);
    ("faults: over-allocated credits caught", `Quick, test_fault_overallocation_forensics);
    ("forensics: crossed joins isolated", `Quick, test_forensics_crossed_joins);
    ("forensics: silent on completion", `Quick, test_forensics_none_when_completed);
    ("forensics: DOT overlay emphasizes core", `Quick, test_forensics_dot_overlay);
    ("validate: dangling channels rejected", `Quick, test_validate_dangling_channel);
    ("validate: double-connected ports rejected", `Quick, test_validate_double_connected);
    ("engine: out-of-fuel carries budget", `Quick, test_out_of_fuel_carries_budget);
  ]
