(* Frozen pre-rewrite reference sanitizer, the oracle counterpart of
   Oracle_engine: the per-cycle rescanning monitors the incremental
   ledgers must agree with verdict-for-verdict.  Unmodified
   lib/sim/sanitizer.ml apart from this header and the aliases. *)

module Engine = Oracle_engine
module Forensics = Oracle_forensics

(** Always-on-able runtime monitors of the elastic protocol.  See the
    interface for the invariant catalogue; this file is organized as one
    [check_*] function per invariant family, driven from the engine's
    monitor hook at the two phase boundaries of every cycle. *)

open Dataflow
open Types

type config = {
  stall_threshold : int;
  check_priority : bool;
}

let default = { stall_threshold = 8; check_priority = true }

type violation = {
  cycle : int;
  unit_label : string;
  invariant : string;
  detail : string;
}

exception Violation of violation

let pp_violation ppf v =
  Fmt.pf ppf "sanitizer: %s violated at cycle %d by %s: %s" v.invariant
    v.cycle v.unit_label v.detail

let () =
  Printexc.register_printer (function
    | Violation v -> Some (Fmt.str "%a" pp_violation v)
    | _ -> None)

let fail ~cycle ~unit_label ~invariant detail =
  raise (Violation { cycle; unit_label; invariant; detail })

(* ------------------------------------------------------------------ *)
(* Monitor state                                                       *)

(** Everything is precomputed from the graph on the first monitor call:
    per-cycle checks then only walk flat arrays of the units they are
    about, never the full unit table (except the two O(channels) scans:
    the conservation recount and the stalled-channel watchdog). *)
type state = {
  sim : Engine.t;
  g : Graph.t;
  cfg : config;
  chaos : bool;
  joins : (int * int) array;  (** uid, inputs *)
  arbiters : (int * int * arbiter_policy) array;  (** uid, inputs, policy *)
  buffers : (int * int) array;  (** uid, slots *)
  credits : (int * int) array;  (** uid, init *)
  pipelines : int array;  (** uids with internal stages *)
  eq1_pairs : (int * int * int * int) array;
      (** cc uid, cc init, ob uid, ob slots — wrapper pairs by label *)
  persistent_out : int array;
      (** output channels of units whose valid must persist until fired *)
  (* per-cycle pre-transfer snapshot, captured at After_settle *)
  pre_occ : int array;      (** per uid *)
  pre_credit : int array;   (** per uid *)
  pre_busy : int array;     (** per uid *)
  (* previous-cycle unconsumed-token snapshot (valid-persistence) *)
  pend : bool array;        (** per cid: offered a token nobody took *)
  pend_data : value array;  (** per cid: the offered payload *)
  mutable have_prev : bool;
  streak : int array;       (** per cid: consecutive valid-and-not-ready *)
  mutable zero_fire : int;  (** consecutive cycles with no transfer *)
}

let string_has_prefix ~prefix s =
  String.length s > String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let strip_prefix ~prefix s =
  String.sub s (String.length prefix) (String.length s - String.length prefix)

let init cfg sim =
  let g = Engine.graph_of sim in
  let n_units = max 1 g.Graph.n_units in
  let n_channels = max 1 g.Graph.n_channels in
  let joins = ref [] in
  let arbiters = ref [] in
  let buffers = ref [] in
  let credits = ref [] in
  let pipelines = ref [] in
  let persistent = ref [] in
  let cc_by_suffix = Hashtbl.create 7 in
  let ob_by_suffix = Hashtbl.create 7 in
  Graph.iter_units g (fun u ->
      let uid = u.Graph.uid in
      (match u.Graph.kind with
      | Join { inputs; _ } -> joins := (uid, inputs) :: !joins
      | Arbiter { inputs; policy } ->
          arbiters := (uid, inputs, policy) :: !arbiters
      | Buffer { slots; _ } -> buffers := (uid, slots) :: !buffers
      | Credit_counter { init } -> credits := (uid, init) :: !credits
      | _ -> ());
      (match Engine.pipeline_busy sim uid with
      | Some _ -> pipelines := uid :: !pipelines
      | None -> ());
      (* Units whose output valid comes from registered internal state:
         once offered, a token cannot be retracted or replaced before a
         consumer takes it.  Combinational kinds (forks, joins, muxes,
         transparent buffers, ...) merely propagate, so their outputs
         legitimately follow whatever their inputs do. *)
      (match u.Graph.kind with
      | Entry _ | Buffer { transparent = false; _ } | Load _ | Store _
      | Credit_counter _ ->
          persistent := uid :: !persistent
      | Operator { latency; _ } when latency > 0 -> persistent := uid :: !persistent
      | _ -> ());
      (* Sharing-wrapper pairs are matched by the label convention of
         {!Crush.Wrapper}: cc_<op><i> guards ob_<op><i>. *)
      (match u.Graph.kind with
      | Credit_counter { init }
        when string_has_prefix ~prefix:"cc_" u.Graph.label ->
          Hashtbl.replace cc_by_suffix
            (strip_prefix ~prefix:"cc_" u.Graph.label)
            (uid, init)
      | Buffer { slots; _ } when string_has_prefix ~prefix:"ob_" u.Graph.label
        ->
          Hashtbl.replace ob_by_suffix
            (strip_prefix ~prefix:"ob_" u.Graph.label)
            (uid, slots)
      | _ -> ()));
  let eq1_pairs =
    Hashtbl.fold
      (fun sfx (cc, init) acc ->
        match Hashtbl.find_opt ob_by_suffix sfx with
        | Some (ob, slots) -> (cc, init, ob, slots) :: acc
        | None -> acc)
      cc_by_suffix []
    |> List.sort compare
  in
  let persistent_out =
    List.filter_map
      (fun uid ->
        Option.map (fun c -> c.Graph.id) (Graph.out_channel g uid 0))
      !persistent
    |> List.sort compare
  in
  let sorted l = List.sort compare l in
  {
    sim;
    g;
    cfg;
    chaos = Engine.has_chaos sim;
    joins = Array.of_list (sorted !joins);
    arbiters = Array.of_list (sorted !arbiters);
    buffers = Array.of_list (sorted !buffers);
    credits = Array.of_list (sorted !credits);
    pipelines = Array.of_list (sorted !pipelines);
    eq1_pairs = Array.of_list eq1_pairs;
    persistent_out = Array.of_list persistent_out;
    pre_occ = Array.make n_units 0;
    pre_credit = Array.make n_units 0;
    pre_busy = Array.make n_units 0;
    pend = Array.make n_channels false;
    pend_data = Array.make n_channels VUnit;
    have_prev = false;
    streak = Array.make n_channels 0;
    zero_fire = 0;
  }

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let label s uid = Graph.label_of s.g uid

let producer_label s cid =
  let c = Graph.channel_exn s.g cid in
  label s c.Graph.src.Graph.unit_id

let in_fired s uid p =
  match Graph.in_channel s.g uid p with
  | Some c -> Engine.channel_fired s.sim c.Graph.id
  | None -> false

let out_fired s uid p =
  match Graph.out_channel s.g uid p with
  | Some c -> Engine.channel_fired s.sim c.Graph.id
  | None -> false

let in_valid s uid p =
  match Graph.in_channel s.g uid p with
  | Some c -> Engine.channel_valid s.sim c.Graph.id
  | None -> false

(* ------------------------------------------------------------------ *)
(* After_settle checks: signals are final, state is pre-transfer       *)

(** The engine's incremental transfer counter against an independent
    recount over every channel. *)
let check_conservation s ~cycle =
  let n = ref 0 in
  Graph.iter_channels s.g (fun c ->
      if Engine.channel_fired s.sim c.Graph.id then incr n);
  let engine_n = Engine.fired_count s.sim in
  if !n <> engine_n then
    fail ~cycle ~unit_label:"<engine>" ~invariant:"token-conservation"
      (Fmt.str
         "incremental transfer count says %d channel(s) fire this cycle, \
          an independent recount finds %d"
         engine_n !n)

(** A registered producer that offered a token nobody took must keep
    offering the same token. *)
let check_persistence s ~cycle =
  if s.have_prev then
    Array.iter
      (fun cid ->
        if s.pend.(cid) then
          if not (Engine.channel_valid s.sim cid) then
            fail ~cycle ~unit_label:(producer_label s cid)
              ~invariant:"valid-persistence"
              (Fmt.str
                 "retracted valid on channel %d before the pending token \
                  (%s) was consumed"
                 cid
                 (value_to_string s.pend_data.(cid)))
          else if
            compare (Engine.channel_data s.sim cid) s.pend_data.(cid) <> 0
          then
            fail ~cycle ~unit_label:(producer_label s cid)
              ~invariant:"valid-persistence"
              (Fmt.str
                 "replaced the pending token on channel %d: offered %s, now \
                  %s"
                 cid
                 (value_to_string s.pend_data.(cid))
                 (value_to_string (Engine.channel_data s.sim cid))))
      s.persistent_out

(** A join fires all inputs and its output together, or nothing. *)
let check_joins s ~cycle =
  Array.iter
    (fun (uid, inputs) ->
      let fired_in = ref 0 in
      for p = 0 to inputs - 1 do
        if in_fired s uid p then incr fired_in
      done;
      let out = out_fired s uid 0 in
      if (out && !fired_in <> inputs) || ((not out) && !fired_in > 0) then
        fail ~cycle ~unit_label:(label s uid) ~invariant:"join-partial-fire"
          (Fmt.str
             "%d of %d input(s) fire while the output %s — a join must \
              consume all operands and emit in the same cycle"
             !fired_in inputs
             (if out then "fires" else "does not fire")))
    s.joins

(** An arbiter grants at most one request per cycle, both outputs fire
    together with the grant, and — without chaos — a priority arbiter
    serves the earliest valid request of its declared order. *)
let check_arbiters s ~cycle =
  Array.iter
    (fun (uid, inputs, policy) ->
      let granted = ref [] in
      for p = inputs - 1 downto 0 do
        if in_fired s uid p then granted := p :: !granted
      done;
      (match !granted with
      | _ :: _ :: _ ->
          fail ~cycle ~unit_label:(label s uid) ~invariant:"arbiter-one-hot"
            (Fmt.str "granted inputs %a in one cycle"
               Fmt.(list ~sep:comma int)
               !granted)
      | _ -> ());
      let o0 = out_fired s uid 0 and o1 = out_fired s uid 1 in
      if o0 <> o1 || (!granted <> [] && not o0) || (!granted = [] && o0) then
        fail ~cycle ~unit_label:(label s uid) ~invariant:"arbiter-output-sync"
          (Fmt.str
             "grant=%a but operand output %s and index output %s — the two \
              outputs must accompany every grant"
             Fmt.(list ~sep:comma int)
             !granted
             (if o0 then "fires" else "holds")
             (if o1 then "fires" else "holds"));
      match (policy, !granted) with
      | Priority order, [ p ] when s.cfg.check_priority && not s.chaos ->
          let rec earlier = function
            | [] | [ _ ] -> ()
            | q :: rest ->
                if q = p then ()
                else if in_valid s uid q then
                  fail ~cycle ~unit_label:(label s uid)
                    ~invariant:"arbiter-priority-order"
                    (Fmt.str
                       "granted input %d while higher-priority input %d was \
                        requesting"
                       p q)
                else earlier rest
          in
          earlier order
      | _ -> ())
    s.arbiters

(** A credit spent this cycle must come from the pre-cycle balance: a
    credit returned in cycle [t] is usable from [t+1] only. *)
let check_credit_grants s ~cycle =
  Array.iter
    (fun (uid, _init) ->
      if out_fired s uid 0 then
        match Engine.credit_count s.sim uid with
        | Some c when c <= 0 ->
            fail ~cycle ~unit_label:(label s uid)
              ~invariant:"credit-same-cycle-return"
              (Fmt.str
                 "granted a credit with a balance of %d — a return landing \
                  this cycle must only become spendable next cycle"
                 c)
        | _ -> ())
    s.credits

(** Stalled-channel watchdog.  Channels frozen at valid-and-not-ready
    for [stall_threshold] consecutive cycles — or any cycle in which no
    token moves at all — trigger a conservative {!Forensics.probe}; a
    cyclic core in that probe is a deadlock already sustained, however
    much of the rest of the circuit is still moving.  A clean probe
    re-arms the watchdog. *)
let check_wait_cycles s ~cycle =
  let trigger = ref (Engine.fired_count s.sim = 0 && s.zero_fire > 0) in
  Graph.iter_channels s.g (fun c ->
      let cid = c.Graph.id in
      if Engine.channel_valid s.sim cid && not (Engine.channel_ready s.sim cid)
      then begin
        s.streak.(cid) <- s.streak.(cid) + 1;
        if s.streak.(cid) >= s.cfg.stall_threshold then trigger := true
      end
      else s.streak.(cid) <- 0);
  s.zero_fire <-
    (if Engine.fired_count s.sim = 0 then s.zero_fire + 1 else 0);
  if !trigger then begin
    let r = Forensics.probe s.sim ~cycle in
    match r.Forensics.cores with
    | core :: _ ->
        let member_note (n : Forensics.note) =
          match n.Forensics.state with
          | Some st -> Fmt.str "%s [%s]" n.Forensics.label st
          | None -> n.Forensics.label
        in
        let head =
          match core.Forensics.notes with
          | n :: _ -> n.Forensics.label
          | [] -> "<core>"
        in
        fail ~cycle ~unit_label:head ~invariant:"deadlock-wait-cycle"
          (Fmt.str "sustained wait cycle through %a"
             Fmt.(list ~sep:(any " -> ") string)
             (List.map member_note core.Forensics.notes))
    | [] -> Array.fill s.streak 0 (Array.length s.streak) 0
  end

(** Snapshot the pre-transfer state the [After_step] checks diff
    against, and the offered-but-unconsumed tokens the next cycle's
    persistence check compares with. *)
let snapshot s =
  Array.iter
    (fun (uid, _) ->
      s.pre_occ.(uid) <-
        (match Engine.buffer_occupancy s.sim uid with
        | Some (occ, _) -> occ
        | None -> 0))
    s.buffers;
  Array.iter
    (fun (uid, _) ->
      s.pre_credit.(uid) <-
        Option.value (Engine.credit_count s.sim uid) ~default:0)
    s.credits;
  Array.iter
    (fun uid ->
      s.pre_busy.(uid) <-
        (match Engine.pipeline_busy s.sim uid with
        | Some (busy, _) -> busy
        | None -> 0))
    s.pipelines;
  Array.iter
    (fun cid ->
      let pending =
        Engine.channel_valid s.sim cid
        && not (Engine.channel_ready s.sim cid)
      in
      s.pend.(cid) <- pending;
      if pending then s.pend_data.(cid) <- Engine.channel_data s.sim cid)
    s.persistent_out;
  s.have_prev <- true

(* ------------------------------------------------------------------ *)
(* After_step checks: state advanced, signals still show the transfers *)

(** Buffer occupancy obeys the exact per-cycle token ledger and never
    exceeds capacity. *)
let check_buffers s ~cycle =
  Array.iter
    (fun (uid, slots) ->
      match Engine.buffer_occupancy s.sim uid with
      | None -> ()
      | Some (occ, _) ->
          if occ > slots then
            fail ~cycle ~unit_label:(label s uid) ~invariant:"buffer-overflow"
              (Fmt.str "%d token(s) in a %d-slot buffer" occ slots);
          let din = if in_fired s uid 0 then 1 else 0 in
          let dout = if out_fired s uid 0 then 1 else 0 in
          let expected = s.pre_occ.(uid) + din - dout in
          (* A transparent buffer bypasses an arriving token straight to a
             firing output, so in+out with an empty queue nets to zero —
             which the ledger equation already says. *)
          if occ <> expected then
            fail ~cycle ~unit_label:(label s uid)
              ~invariant:
                (if expected > occ then "buffer-underflow"
                 else "buffer-overflow")
              (Fmt.str
                 "occupancy %d after a cycle with %d in / %d out of %d — \
                  expected %d"
                 occ din dout s.pre_occ.(uid) expected))
    s.buffers

(** Credits obey the exact ledger and stay within [0, init]: a balance
    above [init] means a credit was returned twice. *)
let check_credit_ledger s ~cycle =
  Array.iter
    (fun (uid, init) ->
      match Engine.credit_count s.sim uid with
      | None -> ()
      | Some c ->
          let dret = if in_fired s uid 0 then 1 else 0 in
          let dgrant = if out_fired s uid 0 then 1 else 0 in
          let expected = s.pre_credit.(uid) + dret - dgrant in
          if c <> expected then
            fail ~cycle ~unit_label:(label s uid)
              ~invariant:"credit-conservation"
              (Fmt.str
                 "balance %d after %d return(s) / %d grant(s) on %d — \
                  expected %d"
                 c dret dgrant s.pre_credit.(uid) expected);
          if c < 0 || c > init then
            fail ~cycle ~unit_label:(label s uid)
              ~invariant:"credit-conservation"
              (Fmt.str
                 "balance %d outside [0, %d] — %s"
                 c init
                 (if c > init then "a credit was returned twice"
                  else "a grant was issued without a credit")))
    s.credits

(** Pipeline fill obeys the token ledger (all operand ports of a
    pipelined unit fire together, so port 0 stands for the intake). *)
let check_pipelines s ~cycle =
  Array.iter
    (fun uid ->
      match Engine.pipeline_busy s.sim uid with
      | None -> ()
      | Some (busy, depth) ->
          let din = if in_fired s uid 0 then 1 else 0 in
          let dout = if out_fired s uid 0 then 1 else 0 in
          let expected = s.pre_busy.(uid) + din - dout in
          if busy <> expected || busy > depth then
            fail ~cycle ~unit_label:(label s uid)
              ~invariant:"token-conservation"
              (Fmt.str
                 "pipeline holds %d/%d token(s) after a cycle with %d in / \
                  %d out of %d — expected %d"
                 busy depth din dout s.pre_busy.(uid) expected))
    s.pipelines

(** The Eq. 1 sizing discipline, checked dynamically per wrapper pair:
    credits in flight (granted, not yet returned) may never outnumber
    the output-buffer slots guaranteed to receive their results.  The
    two credit-sizing faults of {!Crush.Faults} cross this line many
    cycles before the circuit wedges. *)
let check_eq1 s ~cycle =
  Array.iter
    (fun (cc, init, ob, slots) ->
      match Engine.credit_count s.sim cc with
      | None -> ()
      | Some c ->
          let in_flight = init - c in
          if in_flight > slots then
            fail ~cycle ~unit_label:(label s cc)
              ~invariant:"eq1-credit-capacity"
              (Fmt.str
                 "%d credit(s) in flight against %d slot(s) in %s — Eq. 1 \
                  requires every circulating credit to have a guaranteed \
                  landing slot"
                 in_flight slots (label s ob)))
    s.eq1_pairs

(* ------------------------------------------------------------------ *)
(* The monitor                                                         *)

let after_settle s ~cycle =
  check_conservation s ~cycle;
  check_persistence s ~cycle;
  check_joins s ~cycle;
  check_arbiters s ~cycle;
  check_credit_grants s ~cycle;
  check_wait_cycles s ~cycle;
  snapshot s

let after_step s ~cycle =
  check_buffers s ~cycle;
  check_credit_ledger s ~cycle;
  check_pipelines s ~cycle;
  check_eq1 s ~cycle

let monitor ?(config = default) () =
  let st = ref None in
  fun sim ~cycle phase ->
    let s =
      match !st with
      | Some s -> s
      | None ->
          let s = init config sim in
          st := Some s;
          s
    in
    match phase with
    | Engine.After_settle -> after_settle s ~cycle
    | Engine.After_step -> after_step s ~cycle
