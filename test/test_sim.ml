(** Tests of the elastic-circuit simulator: per-unit handshake semantics,
    pipelining, stalling, credits, arbitration, memory ports, deadlock
    detection, and quiescence. *)

open Dataflow
open Dataflow.Types
open Helpers

(* ------------------------------------------------------------------ *)
(* Straight-line semantics *)

let test_entry_exit () =
  let g =
    circuit (fun b -> ignore (Builder.exit_ b (Builder.entry b (VInt 42))))
  in
  let out = run_ok g in
  check Alcotest.(list string) "one exit token" [ "42" ]
    (List.map value_to_string (exit_values out))

let test_const_chain () =
  let g =
    circuit (fun b ->
        let ctrl = Builder.entry b VUnit in
        let v = Builder.const b ~ctrl (VFloat 2.5) in
        ignore (Builder.exit_ b v))
  in
  let out = run_ok g in
  checkb "payload" (exit_values out = [ VFloat 2.5 ])

let test_operator_combinational () =
  let g =
    circuit (fun b ->
        let a = Builder.entry b (VInt 6) and c = Builder.entry b (VInt 7) in
        ignore (Builder.exit_ b (Builder.operator b Imul ~latency:0 [ a; c ])))
  in
  checkb "42" (exit_values (run_ok g) = [ VInt 42 ])

let test_operator_pipelined_latency () =
  let g =
    circuit (fun b ->
        let a = Builder.entry b (VInt 5) and c = Builder.entry b (VInt 8) in
        ignore (Builder.exit_ b (Builder.operator b Iadd ~latency:4 [ a; c ])))
  in
  let out = run_ok g in
  checkb "13" (exit_values out = [ VInt 13 ]);
  (* entry fires at cycle 0, result emerges 4 cycles later *)
  checkb "took at least the latency" (cycles out >= 4)

let test_select_and_bool_ops () =
  let g =
    circuit (fun b ->
        let c = Builder.entry b (VBool true) in
        let x = Builder.entry b (VInt 1) and y = Builder.entry b (VInt 2) in
        ignore (Builder.exit_ b (Builder.operator b Select ~latency:0 [ c; x; y ])))
  in
  checkb "select true" (exit_values (run_ok g) = [ VInt 1 ])

let test_division_by_zero_raises () =
  let g =
    circuit (fun b ->
        let a = Builder.entry b (VInt 5) and z = Builder.entry b (VInt 0) in
        ignore (Builder.exit_ b (Builder.operator b Idiv ~latency:0 [ a; z ])))
  in
  Alcotest.check_raises "div by zero"
    (Invalid_argument "Eval: integer division by zero") (fun () ->
      ignore (Sim.Engine.run g))

(* ------------------------------------------------------------------ *)
(* Buffers *)

let test_opaque_buffer_order () =
  (* Stream 0..7 through a 3-slot opaque FIFO into memory: order kept. *)
  let g =
    int_stream ~n:8 (fun b i ->
        Builder.declare_memory b "m" 8;
        let buffered = Builder.reg b i ~slots:3 ~loop:0 in
        ignore (Builder.store b ~memory:"m" buffered buffered ~loop:0))
  in
  let memory = Sim.Memory.of_graph g in
  ignore (run_ok ~memory g);
  let got = Sim.Memory.get_floats memory "m" in
  Array.iteri (fun i v -> checkb "m[i]=i" (v = float_of_int i)) got

let test_buffer_initial_tokens () =
  let g =
    circuit (fun b ->
        (* A pre-populated buffer emits its token with no producer ever
           firing: its input is tied to a never-firing entry chain. *)
        let never = Builder.entry b VUnit in
        let stuck = Builder.operator b Pass ~latency:9 [ never ] in
        let buf = Builder.reg b stuck ~slots:2 ~init:[ VInt 99 ] in
        ignore (Builder.exit_ b buf))
  in
  let out = run_ok g in
  checkb "init token delivered" (List.mem (VInt 99) (exit_values out))

(* ------------------------------------------------------------------ *)
(* Forks and joins *)

let test_eager_fork_partial_delivery () =
  (* One output is consumed by a slow pipeline, the other by a sink; the
     sink side must receive tokens without waiting for the slow side. *)
  let g =
    circuit (fun b ->
        let e = Builder.entry b (VInt 1) in
        Builder.sink b e;
        let slow = Builder.operator b Pass ~latency:6 [ e ] in
        ignore (Builder.exit_ b slow))
  in
  ignore (run_ok g)

let test_lazy_fork_all_or_nothing () =
  (* A lazy fork with one never-ready successor must not deliver to the
     other one either: the circuit deadlocks with the token stuck. *)
  let g = Graph.create () in
  let e = Graph.add_unit g (Entry (VInt 5)) in
  let f = Graph.add_unit g (Fork { outputs = 2; lazy_ = true }) in
  let x = Graph.add_unit g Exit in
  (* Never-ready consumer: a join whose second input never arrives. *)
  let never = Graph.add_unit g (Entry VUnit) in
  let stuck = Graph.add_unit g (Operator { op = Pass; latency = 3; ports = 1 }) in
  let j = Graph.add_unit g (Join { inputs = 2; keep = [| true; true |] }) in
  let sink = Graph.add_unit g Sink in
  (* never -> stuck stays forever in flight because stuck's consumer is
     the join that waits for the fork, and the fork waits for the join:
     build instead: join input 1 from a source that never produces. *)
  ignore (Graph.connect g (e, 0) (f, 0));
  ignore (Graph.connect g (f, 0) (x, 0));
  ignore (Graph.connect g (f, 1) (j, 0));
  ignore (Graph.connect g (never, 0) (stuck, 0));
  ignore (Graph.connect g (stuck, 0) (j, 1));
  ignore (Graph.connect g (j, 0) (sink, 0));
  (* stuck has latency 3; after it drains the join fires and everything
     completes; before that the lazy fork must hold BOTH outputs. *)
  let out = run_ok g in
  checkb "completed with exit" (exit_values out = [ VInt 5 ])

let test_join_tuple () =
  let g =
    circuit (fun b ->
        let a = Builder.entry b (VInt 1) and c = Builder.entry b (VBool true) in
        ignore (Builder.exit_ b (Builder.join b [ a; c ])))
  in
  checkb "tuple payload" (exit_values (run_ok g) = [ VTuple [ VInt 1; VBool true ] ])

let test_join_keep_mask () =
  let g =
    circuit (fun b ->
        let a = Builder.entry b (VInt 9) and c = Builder.entry b VUnit in
        let j = Builder.join b ~keep:[| true; false |] [ a; c ] in
        ignore (Builder.exit_ b j))
  in
  checkb "credit dropped" (exit_values (run_ok g) = [ VInt 9 ])

(* ------------------------------------------------------------------ *)
(* Mux / branch / merge *)

let test_mux_selects () =
  let run sel want =
    let g =
      circuit (fun b ->
          let s = Builder.entry b sel in
          let a = Builder.entry b (VInt 10) and c = Builder.entry b (VInt 20) in
          ignore (Builder.exit_ b (Builder.mux b ~sel:s [ a; c ])))
    in
    checkb "mux" (exit_values (run_ok g) = [ want ])
  in
  run (VBool true) (VInt 10);
  run (VBool false) (VInt 20);
  run (VInt 1) (VInt 20)

let test_branch_steers () =
  let run cond want_exit =
    let g =
      circuit (fun b ->
          let c = Builder.entry b cond in
          let d = Builder.entry b (VInt 5) in
          let t, f = Builder.branch b ~cond:c d in
          if want_exit then begin
            ignore (Builder.exit_ b t);
            Builder.sink b f
          end
          else begin
            Builder.sink b t;
            ignore (Builder.exit_ b f)
          end)
    in
    checkb "branch" (exit_values (run_ok g) = [ VInt 5 ])
  in
  run (VBool true) true;
  run (VBool false) false

let test_merge_propagates () =
  let g =
    circuit (fun b ->
        let a = Builder.entry b (VInt 5) in
        (* Single-input merge: trivial mutual exclusion. *)
        ignore (Builder.exit_ b (Builder.merge b [ a ])))
  in
  checkb "merge" (exit_values (run_ok g) = [ VInt 5 ])

(* ------------------------------------------------------------------ *)
(* Pipelining, II and head-of-line blocking *)

let test_pipeline_ii_one () =
  (* 16 tokens through a latency-5 unit: completion in ~n + lat cycles,
     i.e. the pipeline accepts one token per cycle. *)
  let n = 16 in
  let g =
    int_stream ~n (fun b i ->
        Builder.declare_memory b "m" n;
        let piped = Builder.operator b Pass ~latency:5 [ i ] ~loop:0 in
        ignore (Builder.store b ~memory:"m" piped piped ~loop:0))
  in
  let out = run_ok g in
  checkb "pipelined (not serialized)" (cycles out < n * 5)

let test_single_enable_stall () =
  (* A pipelined unit whose consumer accepts one token every ~4 cycles:
     the pipeline throttles but never loses or reorders tokens. *)
  let n = 8 in
  let g =
    int_stream ~n (fun b i ->
        Builder.declare_memory b "m" n;
        let piped = Builder.operator b Pass ~latency:3 [ i ] ~loop:0 in
        (* Slow consumer: a deep pass chain feeding the store. *)
        let slowed =
          Builder.operator b Pass ~latency:4
            [ Builder.operator b Pass ~latency:4 [ piped ] ~loop:0 ]
            ~loop:0
        in
        ignore (Builder.store b ~memory:"m" slowed slowed ~loop:0))
  in
  let memory = Sim.Memory.of_graph g in
  ignore (run_ok ~memory g);
  let got = Sim.Memory.get_floats memory "m" in
  Array.iteri (fun i v -> checkb "order kept" (v = float_of_int i)) got

(* ------------------------------------------------------------------ *)
(* Credit counters *)

let test_credit_counter_gates () =
  (* A 2-credit counter gating a 6-token stream, with the credit return
     path looped straight back: all six tokens pass, but the sequential
     credit update bounds the rate (a returned credit is usable only the
     next cycle), so the run takes at least one cycle per token. *)
  let n = 6 in
  let g =
    int_stream ~n (fun b i ->
        Builder.declare_memory b "m" n;
        let cc =
          Builder.add_unit b (Credit_counter { init = 2 }) ~loop:0
        in
        let j =
          Builder.join b ~keep:[| true; false |]
            [ i; Builder.out_wire cc ]
            ~loop:0
        in
        (* Return the credit as soon as the join's token is consumed. *)
        let stored, back = Builder.branch b ~cond:(Builder.operator b (Icmp Ge)
          ~latency:0 [ j; Builder.const b ~ctrl:i (VInt 0) ~loop:0 ] ~loop:0) j in
        ignore (Builder.store b ~memory:"m" stored stored ~loop:0);
        Builder.sink b back;
        let ret = Builder.operator b Pass ~latency:1 [ j ] ~loop:0 in
        Builder.attach b ret (cc, 0))
  in
  let memory = Sim.Memory.of_graph g in
  let out = run_ok ~memory g in
  checkb "rate-bounded" (cycles out >= n);
  Array.iteri
    (fun i v -> checkb "all stored" (v = float_of_int i))
    (Sim.Memory.get_floats memory "m")

(* ------------------------------------------------------------------ *)
(* Arbiters *)

let arbiter_pair policy =
  (* Two entries race for an arbiter; outputs collected via branch. *)
  let g = Graph.create () in
  let a = Graph.add_unit g (Entry (VInt 10)) in
  let b = Graph.add_unit g (Entry (VInt 20)) in
  let arb = Graph.add_unit g (Arbiter { inputs = 2; policy }) in
  let shared = Graph.add_unit g (Operator { op = Pass; latency = 1; ports = 1 }) in
  let cond =
    Graph.add_unit g
      (Buffer { slots = 4; transparent = false; init = []; narrow = true })
  in
  let br = Graph.add_unit g (Branch { outputs = 2 }) in
  let x0 = Graph.add_unit g Exit in
  let x1 = Graph.add_unit g Exit in
  ignore (Graph.connect g (a, 0) (arb, 0));
  ignore (Graph.connect g (b, 0) (arb, 1));
  ignore (Graph.connect g (arb, 0) (shared, 0));
  ignore (Graph.connect g (arb, 1) (cond, 0));
  ignore (Graph.connect g (shared, 0) (br, 0));
  ignore (Graph.connect g (cond, 0) (br, 1));
  ignore (Graph.connect g (br, 0) (x0, 0));
  ignore (Graph.connect g (br, 1) (x1, 0));
  g

let test_arbiter_priority_order () =
  let g = arbiter_pair (Priority [ 1; 0 ]) in
  let out = run_ok g in
  (* Input 1 (value 20) has priority; both eventually pass. *)
  check Alcotest.(list string) "both served, 20 first" [ "20"; "10" ]
    (List.map value_to_string (exit_values out))

let test_arbiter_rotation_serves_in_turn () =
  let g = arbiter_pair (Rotation [ 0; 1 ]) in
  let out = run_ok g in
  check Alcotest.(list string) "rotation order" [ "10"; "20" ]
    (List.map value_to_string (exit_values out))

let test_arbiter_phased () =
  let g = arbiter_pair (Phased [ [ 1 ]; [ 0 ] ]) in
  let out = run_ok g in
  (* Cluster [1] outranks cluster [0]. *)
  check Alcotest.(list string) "phased order" [ "20"; "10" ]
    (List.map value_to_string (exit_values out))

(* ------------------------------------------------------------------ *)
(* Memory ports *)

let test_memory_port_contention () =
  (* Four loads of the same array per iteration vs four loads spread over
     two arrays: the single load port per array bounds the first
     circuit's II at 4 and the second's at 2. *)
  let n = 32 in
  let build same =
    int_stream ~n (fun b i ->
        Builder.declare_memory b "m" n;
        Builder.declare_memory b "m2" n;
        let arr k = if same || k < 2 then "m" else "m2" in
        let loads =
          List.init 4 (fun k ->
              Builder.load b ~memory:(arr k) ~latency:2 i ~loop:0)
        in
        let s =
          List.fold_left
            (fun acc l -> Builder.operator b Iadd ~latency:0 [ acc; l ] ~loop:0)
            (List.hd loads) (List.tl loads)
        in
        Builder.sink b s)
  in
  let slow = cycles (run_ok (build true)) in
  let fast = cycles (run_ok (build false)) in
  checkb "contention costs cycles" (slow > fast);
  checkb "port-bound II" (slow >= 4 * n)

let test_memory_load_store_values () =
  (* store i*2 then an independent read-back pass: memory contents. *)
  let n = 8 in
  let g =
    int_stream ~n (fun b i ->
        Builder.declare_memory b "m" n;
        let two = Builder.const b ~ctrl:i (VInt 2) ~loop:0 in
        let v = Builder.operator b Imul ~latency:0 [ i; two ] ~loop:0 in
        ignore (Builder.store b ~memory:"m" i v ~loop:0))
  in
  let memory = Sim.Memory.of_graph g in
  ignore (run_ok ~memory g);
  Array.iteri
    (fun i v -> checkb "m[i]=2i" (v = float_of_int (2 * i)))
    (Sim.Memory.get_floats memory "m")

let test_memory_bounds () =
  let g =
    circuit (fun b ->
        Builder.declare_memory b "m" 4;
        let addr = Builder.entry b (VInt 9) in
        ignore (Builder.exit_ b (Builder.load b ~memory:"m" ~latency:1 addr)))
  in
  Alcotest.check_raises "oob"
    (Invalid_argument "Memory: m[9] out of bounds (size 4)") (fun () ->
      ignore (Sim.Engine.run g))

(* ------------------------------------------------------------------ *)
(* Deadlock detection *)

let test_deadlock_detected () =
  (* Two joins in crossed dependency: each waits for the other's output,
     so no token ever moves — the classic dependency-cycle deadlock the
     engine must report (rather than spin forever). *)
  let g = Graph.create () in
  let e1 = Graph.add_unit g (Entry (VInt 1)) in
  let e2 = Graph.add_unit g (Entry (VInt 2)) in
  let j1 = Graph.add_unit g (Join { inputs = 2; keep = [| true; true |] }) in
  let j2 = Graph.add_unit g (Join { inputs = 2; keep = [| true; true |] }) in
  let r1 = Graph.add_unit g (Operator { op = Pass; latency = 1; ports = 1 }) in
  let r2 = Graph.add_unit g (Operator { op = Pass; latency = 1; ports = 1 }) in
  let f1 = Graph.add_unit g (Fork { outputs = 2; lazy_ = false }) in
  let f2 = Graph.add_unit g (Fork { outputs = 2; lazy_ = false }) in
  let x = Graph.add_unit g Exit in
  let sink = Graph.add_unit g Sink in
  ignore (Graph.connect g (e1, 0) (j1, 0));
  ignore (Graph.connect g (e2, 0) (j2, 0));
  ignore (Graph.connect g (j1, 0) (r1, 0));
  ignore (Graph.connect g (j2, 0) (r2, 0));
  ignore (Graph.connect g (r1, 0) (f1, 0));
  ignore (Graph.connect g (r2, 0) (f2, 0));
  ignore (Graph.connect g (f1, 0) (j2, 1));
  ignore (Graph.connect g (f2, 0) (j1, 1));
  ignore (Graph.connect g (f1, 1) (x, 0));
  ignore (Graph.connect g (f2, 1) (sink, 0));
  Validate.check_exn g;
  ignore (run_deadlock g)

let test_stalled_channels_reported () =
  let b = Crush.Paper_examples.fig1 () in
  let g = Crush.Paper_examples.share_pair b ~ops:[ b.m2; b.m3 ] `Naive in
  let out = run_deadlock g in
  checkb "stalled channels nonempty"
    (Sim.Engine.stalled_channels out.Sim.Engine.sim <> [])

(* ------------------------------------------------------------------ *)
(* Engine internals *)

let test_selector_errors () =
  let g =
    circuit (fun b ->
        let s = Builder.entry b (VInt 7) in
        let a = Builder.entry b (VInt 0) and c = Builder.entry b (VInt 1) in
        ignore (Builder.exit_ b (Builder.mux b ~sel:s [ a; c ])))
  in
  Alcotest.check_raises "bad selector"
    (Invalid_argument "Engine: selector 7 out of range [0,2)") (fun () ->
      ignore (Sim.Engine.run g))

let test_out_of_fuel () =
  (* An II-1 stream that never terminates within the fuel budget. *)
  let g =
    int_stream ~n:1000000 (fun b i -> Builder.sink b i)
  in
  let out = Sim.Engine.run ~max_cycles:200 g in
  (match out.Sim.Engine.stats.Sim.Engine.status with
  | Sim.Engine.Out_of_fuel _ -> ()
  | st -> Alcotest.failf "expected out of fuel, got %a" Sim.Engine.pp_status st)

let test_phased_rotation_within_cluster () =
  (* Three requesters: cluster [[0; 1]; [2]].  Rotation inside the first
     cluster alternates 0 and 1; input 2 only goes when the first
     cluster's turn-holder is absent — here never, since both are
     one-shot entries present from cycle 0.  Grant order: 0, 1, 2. *)
  let g = Graph.create () in
  let e0 = Graph.add_unit g (Entry (VInt 100)) in
  let e1 = Graph.add_unit g (Entry (VInt 200)) in
  let e2 = Graph.add_unit g (Entry (VInt 300)) in
  let arb =
    Graph.add_unit g (Arbiter { inputs = 3; policy = Phased [ [ 0; 1 ]; [ 2 ] ] })
  in
  let shared = Graph.add_unit g (Operator { op = Pass; latency = 1; ports = 1 }) in
  let cond =
    Graph.add_unit g
      (Buffer { slots = 4; transparent = false; init = []; narrow = true })
  in
  let br = Graph.add_unit g (Branch { outputs = 3 }) in
  let xs = List.init 3 (fun _ -> Graph.add_unit g Exit) in
  ignore (Graph.connect g (e0, 0) (arb, 0));
  ignore (Graph.connect g (e1, 0) (arb, 1));
  ignore (Graph.connect g (e2, 0) (arb, 2));
  ignore (Graph.connect g (arb, 0) (shared, 0));
  ignore (Graph.connect g (arb, 1) (cond, 0));
  ignore (Graph.connect g (shared, 0) (br, 0));
  ignore (Graph.connect g (cond, 0) (br, 1));
  List.iteri (fun i x -> ignore (Graph.connect g (br, i) (x, 0))) xs;
  let out = run_ok g in
  check Alcotest.(list string) "phased grant order" [ "100"; "200"; "300" ]
    (List.map value_to_string (exit_values out))

let test_store_port_contention () =
  (* Two stores per iteration to one array vs to two arrays: the single
     store port serializes the former. *)
  let n = 24 in
  let build same =
    int_stream ~n (fun b i ->
        Builder.declare_memory b "m" (2 * n);
        Builder.declare_memory b "m2" (2 * n);
        ignore (Builder.store b ~memory:"m" i i ~loop:0);
        let off = Builder.operator b Iadd ~latency:0
            [ i; Builder.const b ~ctrl:i (VInt n) ~loop:0 ] ~loop:0 in
        ignore
          (Builder.store b ~memory:(if same then "m" else "m2") off i ~loop:0))
  in
  let slow = cycles (run_ok (build true)) in
  let fast = cycles (run_ok (build false)) in
  checkb "store contention costs cycles" (slow > fast)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_dot_of_shared_circuit () =
  let b = Crush.Paper_examples.fig1 () in
  let g =
    Crush.Paper_examples.share_pair b
      ~ops:[ b.Crush.Paper_examples.m2; b.Crush.Paper_examples.m3 ]
      `Credits
  in
  let dot = Dot.to_string g in
  checkb "arbiter rendered" (contains dot "arb_imul");
  checkb "credit counters rendered" (contains dot "cc_imul0")

let test_transfers_counted () =
  let g =
    circuit (fun b -> ignore (Builder.exit_ b (Builder.entry b VUnit)))
  in
  let out = run_ok g in
  checki "exactly one transfer" 1 out.Sim.Engine.stats.Sim.Engine.transfers

let suite =
  [
    ("sim: entry/exit", `Quick, test_entry_exit);
    ("sim: const", `Quick, test_const_chain);
    ("sim: comb operator", `Quick, test_operator_combinational);
    ("sim: pipelined operator", `Quick, test_operator_pipelined_latency);
    ("sim: select", `Quick, test_select_and_bool_ops);
    ("sim: div by zero", `Quick, test_division_by_zero_raises);
    ("sim: opaque FIFO order", `Quick, test_opaque_buffer_order);
    ("sim: buffer init tokens", `Quick, test_buffer_initial_tokens);
    ("sim: eager fork partial", `Quick, test_eager_fork_partial_delivery);
    ("sim: lazy fork", `Quick, test_lazy_fork_all_or_nothing);
    ("sim: join tuple", `Quick, test_join_tuple);
    ("sim: join keep mask", `Quick, test_join_keep_mask);
    ("sim: mux", `Quick, test_mux_selects);
    ("sim: branch", `Quick, test_branch_steers);
    ("sim: merge", `Quick, test_merge_propagates);
    ("sim: pipeline II=1", `Quick, test_pipeline_ii_one);
    ("sim: single-enable stall", `Quick, test_single_enable_stall);
    ("sim: credit gating", `Quick, test_credit_counter_gates);
    ("sim: arbiter priority", `Quick, test_arbiter_priority_order);
    ("sim: arbiter rotation", `Quick, test_arbiter_rotation_serves_in_turn);
    ("sim: arbiter phased", `Quick, test_arbiter_phased);
    ("sim: memory port contention", `Quick, test_memory_port_contention);
    ("sim: load/store values", `Quick, test_memory_load_store_values);
    ("sim: memory bounds", `Quick, test_memory_bounds);
    ("sim: deadlock detection", `Quick, test_deadlock_detected);
    ("sim: stalled channels", `Quick, test_stalled_channels_reported);
    ("sim: selector errors", `Quick, test_selector_errors);
    ("sim: transfer count", `Quick, test_transfers_counted);
    ("sim: out of fuel", `Quick, test_out_of_fuel);
    ("sim: phased cluster rotation", `Quick, test_phased_rotation_within_cluster);
    ("sim: store port contention", `Quick, test_store_port_contention);
    ("sim: dot of shared circuit", `Quick, test_dot_of_shared_circuit);
  ]
