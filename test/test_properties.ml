(** Property-based tests (qcheck): generated expressions, kernels,
    buffer chains and timed graphs, checked against independent models. *)

open Dataflow
open Dataflow.Types
open Helpers

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_coeff =
  QCheck2.Gen.map
    (fun i -> float_of_int i /. 8.0)
    (QCheck2.Gen.int_range (-16) 16)

(* Random arithmetic expression over two variables, with an OCaml
   evaluator; division is excluded (float division by generated values
   would demand care for no extra coverage). *)
type exp =
  | Lit of float
  | Var_a
  | Var_b
  | Add of exp * exp
  | Sub of exp * exp
  | Mul of exp * exp

let gen_exp =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof [ map (fun c -> Lit c) gen_coeff; return Var_a; return Var_b ]
        else
          frequency
            [
              (1, map (fun c -> Lit c) gen_coeff);
              (1, return Var_a);
              (1, return Var_b);
              (2, map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2)));
              (2, map2 (fun a b -> Sub (a, b)) (self (n / 2)) (self (n / 2)));
              (2, map2 (fun a b -> Mul (a, b)) (self (n / 2)) (self (n / 2)));
            ]))

let rec eval_exp ~a ~b = function
  | Lit c -> c
  | Var_a -> a
  | Var_b -> b
  | Add (x, y) -> eval_exp ~a ~b x +. eval_exp ~a ~b y
  | Sub (x, y) -> eval_exp ~a ~b x -. eval_exp ~a ~b y
  | Mul (x, y) -> eval_exp ~a ~b x *. eval_exp ~a ~b y

let rec exp_to_c = function
  | Lit c -> Fmt.str "(0.0 + %h)" c |> fun _ -> Fmt.str "(%.6f)" c
  | Var_a -> "va"
  | Var_b -> "vb"
  | Add (x, y) -> Fmt.str "(%s + %s)" (exp_to_c x) (exp_to_c y)
  | Sub (x, y) -> Fmt.str "(%s - %s)" (exp_to_c x) (exp_to_c y)
  | Mul (x, y) -> Fmt.str "(%s * %s)" (exp_to_c x) (exp_to_c y)

(* Generated expression trees are evaluated identically on both sides,
   so equal NaNs and infinities (from multiplicative blowup) count as
   agreement. *)
let close a b =
  (Float.is_nan a && Float.is_nan b)
  || a = b
  || Float.abs (a -. b)
     <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* ------------------------------------------------------------------ *)
(* Properties *)

(* 1. Compiled straight-line expressions match the OCaml evaluator. *)
let prop_expression_compiles =
  qtest ~count:60 "compiled expression = evaluated expression"
    QCheck2.Gen.(triple gen_exp gen_coeff gen_coeff)
    (fun (e, a, b) ->
      let src =
        Fmt.str
          {|void f(float x[2], float out[1]) {
              float va = x[0];
              float vb = x[1];
              out[0] = %s;
            }|}
          (exp_to_c e)
      in
      let c = compile src in
      let memory = Sim.Memory.of_graph c.Minic.Codegen.graph in
      Sim.Memory.set_floats memory "x" [| a; b |];
      let out = Sim.Engine.run ~memory c.Minic.Codegen.graph in
      Sim.Engine.is_completed out
      && close (Sim.Memory.get_floats memory "out").(0) (eval_exp ~a ~b e))

(* 2. A generated reduction loop matches its OCaml model. *)
let prop_reduction_loop =
  qtest ~count:30 "reduction loop = OCaml fold"
    QCheck2.Gen.(triple (int_range 1 24) gen_coeff gen_coeff)
    (fun (n, c1, c2) ->
      let src =
        Fmt.str
          {|void f(float x[%d], float out[1]) {
              float s = 0.0;
              for (int i = 0; i < %d; i++) {
                s += x[i] * (%.6f) + (%.6f);
              }
              out[0] = s;
            }|}
          n n c1 c2
      in
      let rng = Kernels.Data.create (n + 17) in
      let data = Kernels.Data.signed_array rng n in
      let compiled = compile src in
      let memory = Sim.Memory.of_graph compiled.Minic.Codegen.graph in
      Sim.Memory.set_floats memory "x" data;
      let out = Sim.Engine.run ~memory compiled.Minic.Codegen.graph in
      let want = Array.fold_left (fun s x -> s +. ((x *. c1) +. c2)) 0.0 data in
      Sim.Engine.is_completed out
      && close (Sim.Memory.get_floats memory "out").(0) want)

(* 3. Token streams survive arbitrary buffer chains in order. *)
let gen_buffer_chain =
  QCheck2.Gen.(
    list_size (int_range 1 5)
      (pair bool (int_range 1 4)))

let prop_buffer_chain_fifo =
  qtest ~count:60 "buffer chains preserve order and count" gen_buffer_chain
    (fun chain ->
      let n = 10 in
      let g =
        int_stream ~n (fun b i ->
            Builder.declare_memory b "m" n;
            let w =
              List.fold_left
                (fun w (transparent, slots) ->
                  if transparent then Builder.slack b w slots ~loop:0
                  else Builder.reg b w ~slots:(max 2 slots) ~loop:0)
                i chain
            in
            ignore (Builder.store b ~memory:"m" w w ~loop:0))
      in
      let memory = Sim.Memory.of_graph g in
      let out = Sim.Engine.run ~memory g in
      Sim.Engine.is_completed out
      && begin
           let got = Sim.Memory.get_floats memory "m" in
           Array.for_all (fun x -> x >= 0.0) got
           && Array.to_list got = List.init n float_of_int
         end)

(* 4. Max cycle ratio of a single generated ring is sum(lat)/sum(tok). *)
let gen_ring =
  QCheck2.Gen.(
    list_size (int_range 2 8) (pair (int_range 0 9) (int_range 0 2)))

let prop_cycle_ratio_ring =
  qtest ~count:100 "cycle ratio of a ring = lat/tok" gen_ring (fun spec ->
      let n = List.length spec in
      let tokens_total = List.fold_left (fun a (_, t) -> a + t) 0 spec in
      let lat_total = List.fold_left (fun a (l, _) -> a + l) 0 spec in
      let edges =
        List.mapi
          (fun i (latency, tokens) ->
            { Analysis.Timed_graph.src = i; dst = (i + 1) mod n; latency; tokens })
          spec
      in
      match Analysis.Cycle_ratio.compute edges with
      | Analysis.Cycle_ratio.Unbounded -> tokens_total = 0 && lat_total > 0
      | Analysis.Cycle_ratio.Ratio r ->
          tokens_total > 0
          && Float.abs (r -. (float_of_int lat_total /. float_of_int tokens_total))
             < 0.01
      | Analysis.Cycle_ratio.Acyclic -> tokens_total = 0 && lat_total = 0)

(* 5. The LCG stays in range and is deterministic per seed. *)
let prop_lcg =
  qtest ~count:100 "LCG in [0,1) and deterministic" QCheck2.Gen.int
    (fun seed ->
      let a = Kernels.Data.create seed and b = Kernels.Data.create seed in
      List.for_all
        (fun _ ->
          let x = Kernels.Data.next a and y = Kernels.Data.next b in
          x = y && x >= 0.0 && x < 1.0000001)
        (List.init 20 Fun.id))

(* 6. value_close is reflexive on generated payloads. *)
let gen_value =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [
              map (fun i -> VInt i) small_int;
              map (fun f -> VFloat f) (float_bound_inclusive 1e6);
              map (fun b -> VBool b) bool;
              return VUnit;
            ]
        else
          frequency
            [
              (3, self 0);
              (1, map (fun vs -> VTuple vs) (list_size (int_range 0 3) (self 0)));
            ]))

let prop_value_close_refl =
  qtest ~count:200 "value_close reflexive" gen_value (fun v -> value_close v v)

(* 7. CRUSH preserves the results of generated accumulation kernels. *)
let prop_crush_preserves_random_kernels =
  qtest ~count:15 "CRUSH preserves generated kernels"
    QCheck2.Gen.(pair (int_range 2 5) (list_size (return 4) gen_coeff))
    (fun (terms, coeffs) ->
      let n = 12 in
      let body =
        String.concat "\n"
          (List.mapi
             (fun k c ->
               Fmt.str "s += x[i] * (%.6f) + (%.6f);" c (float_of_int k /. 4.0))
             (List.filteri (fun i _ -> i < terms) (coeffs @ [ 0.5; 0.25; 0.125 ])))
      in
      let src =
        Fmt.str
          {|void f(float x[%d], float out[1]) {
              float s = 0.0;
              for (int i = 0; i < %d; i++) { %s }
              out[0] = s;
            }|}
          n n body
      in
      let rng = Kernels.Data.create terms in
      let data = Kernels.Data.signed_array rng n in
      let run share =
        let c = compile src in
        if share then
          ignore
            (Crush.Share.crush c.Minic.Codegen.graph
               ~critical_loops:c.Minic.Codegen.critical_loops);
        let memory = Sim.Memory.of_graph c.Minic.Codegen.graph in
        Sim.Memory.set_floats memory "x" data;
        let out = Sim.Engine.run ~memory c.Minic.Codegen.graph in
        (Sim.Engine.is_completed out, (Sim.Memory.get_floats memory "out").(0))
      in
      let ok0, v0 = run false in
      let ok1, v1 = run true in
      ok0 && ok1 && close v0 v1)

(* 8. Partial unrolling by any divisor preserves semantics. *)
let prop_unroll_divisors =
  qtest ~count:20 "unrolling preserves semantics"
    (QCheck2.Gen.oneofl [ 1; 2; 3; 4; 6; 12 ])
    (fun factor ->
      let n = 12 in
      let src =
        Fmt.str
          {|void f(float x[%d], float y[%d]) {
              for (int i = 0; i < %d; i++) { y[i] = x[i] * 2.0 + 1.0; }
            }|}
          n n n
      in
      let k = Minic.Parser.parse_kernel src in
      let k = Minic.Unroll.unroll_innermost ~factor k in
      let c = Minic.Codegen.compile k in
      let rng = Kernels.Data.create factor in
      let data = Kernels.Data.signed_array rng n in
      let memory = Sim.Memory.of_graph c.Minic.Codegen.graph in
      Sim.Memory.set_floats memory "x" data;
      let out = Sim.Engine.run ~memory c.Minic.Codegen.graph in
      Sim.Engine.is_completed out
      && begin
           let got = Sim.Memory.get_floats memory "y" in
           Array.for_all2
             (fun g x -> close g ((x *. 2.0) +. 1.0))
             got data
         end)

(* 9b. Whole generated kernels: interpreter vs compiled circuit.  The
   generator builds type-correct ASTs directly: a loop over an input
   array with a random mix of float expressions, accumulations and
   conditionals. *)
let gen_float_expr_ast =
  (* Expressions over: d (the loaded element), s (the accumulator), and
     small float literals; +,-,* only. *)
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [
              return (Minic.Ast.Var "d");
              return (Minic.Ast.Var "s");
              map (fun c -> Minic.Ast.Float_lit c) gen_coeff;
            ]
        else
          frequency
            [
              (1, return (Minic.Ast.Var "d"));
              (2,
               map2
                 (fun op (a, b) -> Minic.Ast.Bin (op, a, b))
                 (oneofl Minic.Ast.[ Add; Sub; Mul ])
                 (pair (self (n / 2)) (self (n / 2))));
            ]))

let gen_kernel_ast =
  QCheck2.Gen.(
    let n = 10 in
    map2
      (fun (e_then, e_else) threshold ->
        let open Minic.Ast in
        let body =
          [
            Decl (Tfloat, "d", Some (Index ("x", [ Var "i" ])));
            If
              ( Bin (Ge, Var "d", Float_lit threshold),
                [ Assign (Lv_var "s", e_then) ],
                [ Assign (Lv_var "s", e_else) ] );
          ]
        in
        {
          k_name = "gen";
          k_params =
            [
              { p_name = "x"; p_ty = Tfloat; p_dims = [ n ] };
              { p_name = "out"; p_ty = Tfloat; p_dims = [ 1 ] };
            ];
          k_body =
            [
              Decl (Tfloat, "s", Some (Float_lit 0.0));
              For
                {
                  var = "i";
                  init = Int_lit 0;
                  cmp = Cmp_lt;
                  limit = Int_lit n;
                  step = 1;
                  body;
                };
              Assign (Lv_index ("out", [ Int_lit 0 ]), Var "s");
            ];
        })
      (pair gen_float_expr_ast gen_float_expr_ast)
      gen_coeff)

let prop_interp_vs_circuit =
  qtest ~count:25 "generated kernels: interpreter = circuit" gen_kernel_ast
    (fun kernel ->
      ignore (Minic.Sema.check kernel);
      let rng = Kernels.Data.create (Hashtbl.hash (Minic.Print.to_string kernel)) in
      let data = Kernels.Data.signed_array rng 10 in
      (* Interpreter path. *)
      let imem = Hashtbl.create 4 in
      Hashtbl.replace imem "x" (Array.copy data);
      Hashtbl.replace imem "out" (Array.make 1 0.0);
      Minic.Interp.run kernel imem;
      (* Circuit path (also through the printer, exercising round trip). *)
      let c = Minic.Codegen.compile_source (Minic.Print.to_string kernel) in
      let memory = Sim.Memory.of_graph c.Minic.Codegen.graph in
      Sim.Memory.set_floats memory "x" data;
      let out = Sim.Engine.run ~memory c.Minic.Codegen.graph in
      Sim.Engine.is_completed out
      && close
           (Sim.Memory.get_floats memory "out").(0)
           (Hashtbl.find imem "out").(0))

(* 9. Chaos invariance: a CRUSH-shared circuit built from a random
   kernel must, under any chaos seed, still terminate and produce the
   interpreter's results — the latency-insensitivity claim attacked
   adversarially.  QCheck2 shrinks both the kernel and the seed, so a
   failure reproduces as a minimal kernel x seed pair. *)
let prop_chaos_invariance =
  qtest ~count:20 "chaos never changes results of shared circuits"
    ~print:(fun (kernel, seed) ->
      Fmt.str "chaos seed %d on:@.%s" seed (Minic.Print.to_string kernel))
    QCheck2.Gen.(pair gen_kernel_ast (int_range 0 1_000_000))
    (fun (kernel, seed) ->
      ignore (Minic.Sema.check kernel);
      let rng = Kernels.Data.create (Hashtbl.hash (Minic.Print.to_string kernel)) in
      let data = Kernels.Data.signed_array rng 10 in
      let imem = Hashtbl.create 4 in
      Hashtbl.replace imem "x" (Array.copy data);
      Hashtbl.replace imem "out" (Array.make 1 0.0);
      Minic.Interp.run kernel imem;
      let c = Minic.Codegen.compile_source (Minic.Print.to_string kernel) in
      ignore
        (Crush.Share.crush c.Minic.Codegen.graph
           ~critical_loops:c.Minic.Codegen.critical_loops);
      let memory = Sim.Memory.of_graph c.Minic.Codegen.graph in
      Sim.Memory.set_floats memory "x" data;
      let out =
        Sim.Engine.run ~chaos:(Sim.Chaos.default ~seed) ~memory
          c.Minic.Codegen.graph
      in
      Sim.Engine.is_completed out
      && close
           (Sim.Memory.get_floats memory "out").(0)
           (Hashtbl.find imem "out").(0))

(* 10. Priority inference always returns a permutation of its input. *)
let prop_priority_permutation =
  qtest ~count:10 "priority is a permutation"
    (QCheck2.Gen.oneofl [ "atax"; "gemm"; "gesummv"; "syr2k" ])
    (fun name ->
      let bench = Kernels.Registry.find name in
      let c = compile bench.Kernels.Registry.source in
      let ctx =
        Crush.Context.make c.Minic.Codegen.graph
          ~critical_loops:c.Minic.Codegen.critical_loops
      in
      let cands = Crush.Context.candidates ctx in
      let ordered = Crush.Priority.infer ctx cands in
      List.sort compare ordered = List.sort compare cands)

let suite =
  [
    prop_expression_compiles;
    prop_reduction_loop;
    prop_buffer_chain_fifo;
    prop_cycle_ratio_ring;
    prop_lcg;
    prop_value_close_refl;
    prop_crush_preserves_random_kernels;
    prop_unroll_divisors;
    prop_interp_vs_circuit;
    prop_chaos_invariance;
    prop_priority_permutation;
  ]
