(** [crush] — command-line driver for the CRUSH resource-sharing flow.

    Subcommands mirror the toolflow of Section 6: compile a benchmark
    kernel to a dataflow circuit, analyze its performance-critical CFCs,
    apply a sharing technique, simulate and verify, or export Graphviz.

    Examples:
      crush list
      crush compile atax --dot atax.dot
      crush analyze gemm
      crush run gsumif --technique crush
      crush run symm --technique inorder --strategy bb
*)

open Cmdliner

let strategy_conv =
  let parse = function
    | "bb" | "bb-ordered" -> Ok Minic.Codegen.Bb_ordered
    | "fast" | "fast-token" -> Ok Minic.Codegen.Fast_token
    | s -> Error (`Msg (Fmt.str "unknown strategy %s (use bb | fast)" s))
  in
  let print ppf s = Fmt.string ppf (Minic.Codegen.string_of_strategy s) in
  Arg.conv (parse, print)

type technique = T_naive | T_crush | T_inorder

let technique_conv =
  let parse = function
    | "naive" | "none" -> Ok T_naive
    | "crush" -> Ok T_crush
    | "inorder" | "in-order" -> Ok T_inorder
    | s -> Error (`Msg (Fmt.str "unknown technique %s (naive | crush | inorder)" s))
  in
  let print ppf = function
    | T_naive -> Fmt.string ppf "naive"
    | T_crush -> Fmt.string ppf "crush"
    | T_inorder -> Fmt.string ppf "inorder"
  in
  Arg.conv (parse, print)

let bench_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BENCH" ~doc:"Benchmark name (see $(b,crush list)).")

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv Minic.Codegen.Bb_ordered
    & info [ "strategy" ] ~docv:"S" ~doc:"HLS strategy: bb or fast.")

let technique_arg =
  Arg.(
    value
    & opt technique_conv T_crush
    & info [ "technique" ] ~docv:"T" ~doc:"Sharing technique: naive, crush or inorder.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE" ~doc:"Write the circuit as Graphviz to $(docv).")

let compile_bench name strategy =
  let b = Kernels.Registry.find name in
  (b, Minic.Codegen.compile_source ~strategy b.Kernels.Registry.source)

let apply_technique technique (c : Minic.Codegen.compiled) =
  match technique with
  | T_naive -> ()
  | T_crush ->
      let r =
        Crush.Share.crush c.Minic.Codegen.graph
          ~critical_loops:c.Minic.Codegen.critical_loops
      in
      Fmt.pr "%a@." Crush.Share.pp_report r
  | T_inorder ->
      let r =
        Crush.Inorder.share c.Minic.Codegen.graph
          ~critical_loops:c.Minic.Codegen.critical_loops
          ~conditional_bbs:c.Minic.Codegen.conditional_bbs
      in
      Fmt.pr "In-order: %d groups, %d evaluations, %.3fs@."
        (List.length r.Crush.Inorder.groups)
        r.Crush.Inorder.evaluations r.Crush.Inorder.opt_time_s

let list_cmd =
  let doc = "List the available benchmarks." in
  let run () =
    List.iter
      (fun (b : Kernels.Registry.bench) ->
        Fmt.pr "%-10s arrays: %a@." b.Kernels.Registry.name
          Fmt.(list ~sep:sp (pair ~sep:(any "[") string (int ++ any "]")))
          b.Kernels.Registry.arrays)
      Kernels.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let compile_cmd =
  let doc = "Compile a benchmark to a dataflow circuit and print statistics." in
  let run name strategy dot =
    let _, c = compile_bench name strategy in
    let g = c.Minic.Codegen.graph in
    let area = Analysis.Area.total g in
    Fmt.pr "%s (%s): %d units, %d channels@." name
      (Minic.Codegen.string_of_strategy strategy)
      (Dataflow.Graph.live_unit_count g)
      (List.length (Dataflow.Graph.channels g));
    Fmt.pr "area: %a (%d slices), CP %.2f ns@." Analysis.Area.pp_cost area
      (Analysis.Area.slices area)
      (Analysis.Timing.critical_path g);
    (match dot with
    | Some path ->
        Dataflow.Dot.to_file g path;
        Fmt.pr "wrote %s@." path
    | None -> ())
  in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(const run $ bench_arg $ strategy_arg $ dot_arg)

let analyze_cmd =
  let doc = "Print the performance-critical CFCs, IIs and occupancies." in
  let run name strategy =
    let _, c = compile_bench name strategy in
    let g = c.Minic.Codegen.graph in
    let cfcs =
      Analysis.Cfc.critical g ~critical_loops:c.Minic.Codegen.critical_loops
    in
    List.iter
      (fun (cfc : Analysis.Cfc.t) ->
        Fmt.pr "loop %d: %a (memory-port bound %d), %d units@." cfc.loop_id
          Analysis.Cycle_ratio.pp cfc.ii cfc.mem_ii
          (List.length cfc.units);
        List.iter
          (fun uid ->
            match Dataflow.Graph.kind_of g uid with
            | Dataflow.Types.Operator { op = (Fadd | Fsub | Fmul | Fdiv) as op; _ }
              ->
                Fmt.pr "  %s (%s): occupancy %.2f@."
                  (Dataflow.Graph.label_of g uid)
                  (Dataflow.Types.string_of_opcode op)
                  (Analysis.Cfc.occupancy g cfc uid)
            | _ -> ())
          cfc.units)
      cfcs
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ bench_arg $ strategy_arg)

let run_cmd =
  let doc = "Compile, optionally share, simulate and verify a benchmark." in
  let run name strategy technique dot =
    let b, c = compile_bench name strategy in
    apply_technique technique c;
    let g = c.Minic.Codegen.graph in
    let v = Kernels.Harness.run_circuit b g in
    Fmt.pr "%s: %a@." name Kernels.Harness.pp_verdict v;
    List.iter
      (fun (a, i, want, got) ->
        Fmt.pr "  mismatch %s[%d]: expected %g, got %g@." a i want got)
      v.Kernels.Harness.mismatches;
    Fmt.pr "fp units: %a; area: %a; CP %.2f ns@."
      Fmt.(list ~sep:(any " ") (pair ~sep:(any ":") string int))
      (Analysis.Area.fp_unit_counts g)
      Analysis.Area.pp_cost (Analysis.Area.total g)
      (Analysis.Timing.critical_path g);
    (match dot with
    | Some path ->
        Dataflow.Dot.to_file g path;
        Fmt.pr "wrote %s@." path
    | None -> ());
    if not v.Kernels.Harness.functionally_correct then exit 1
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ bench_arg $ strategy_arg $ technique_arg $ dot_arg)

let stats_cmd =
  let doc =
    "Simulate a benchmark and report dynamic statistics: achieved II per \
     loop and floating-point unit utilization."
  in
  let run name strategy technique =
    let b, c = compile_bench name strategy in
    apply_technique technique c;
    let g = c.Minic.Codegen.graph in
    let inputs = Kernels.Registry.fresh_inputs b in
    let memory = Sim.Memory.of_graph g in
    Hashtbl.iter (fun n d -> Sim.Memory.set_floats memory n d) inputs;
    let out, stats = Sim.Stats.collect ~memory g in
    Fmt.pr "%s: %a@." name Sim.Engine.pp_status
      out.Sim.Engine.stats.Sim.Engine.status;
    List.iter
      (fun loop ->
        match Sim.Stats.loop_ii g stats loop with
        | Some ii -> Fmt.pr "loop %d: achieved II %.2f@." loop ii
        | None -> ())
      c.Minic.Codegen.all_loops;
    Dataflow.Graph.iter_units g (fun u ->
        match u.Dataflow.Graph.kind with
        | Dataflow.Types.Operator
            { op = Dataflow.Types.(Fadd | Fsub | Fmul | Fdiv); _ } ->
            Fmt.pr "%-14s fires %6d, utilization %4.0f%%@." u.Dataflow.Graph.label
              (Sim.Stats.fires stats u.Dataflow.Graph.uid)
              (100.0 *. Sim.Stats.utilization g stats u.Dataflow.Graph.uid)
        | _ -> ());
    (* Scripted sweeps must not silently pass over a wedged circuit. *)
    if not (Sim.Engine.is_completed out) then exit 1
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run $ bench_arg $ strategy_arg $ technique_arg)

(* ------------------------------------------------------------------ *)
(* trace / profile: cycle-level observability (lib/obs)                *)

(** Kernel name resolution shared by [trace] and [profile]: the paper's
    motivating circuits by figure name, or any registry benchmark
    (compiled with [strategy], shared with [technique]). *)
let paper_example = function
  | "fig1" -> Some (Crush.Paper_examples.fig1 ()).Crush.Paper_examples.graph
  | "fig2" ->
      (* Figure 2: the Figure 1 circuit with M1 and M3 out-of-order
         shared behind a priority arbiter. *)
      let b = Crush.Paper_examples.fig1 () in
      Some
        (Crush.Paper_examples.share_pair b
           ~ops:[ b.Crush.Paper_examples.m1; b.Crush.Paper_examples.m3 ]
           (`Priority [ 0; 1 ]))
  | "fig5" -> Some (Crush.Paper_examples.fig5 ()).Crush.Paper_examples.graph
  | _ -> None

(** Resolve [name] to (graph, runner); the runner simulates once with
    the given observability hooks attached and returns the stats. *)
let obs_subject name strategy technique =
  match paper_example name with
  | Some g ->
      ( g,
        fun ?monitor ?sink () ->
          (Sim.Engine.run ~max_cycles:2_000_000 ?monitor ?sink g)
            .Sim.Engine.stats )
  | None ->
      let b, c = compile_bench name strategy in
      apply_technique technique c;
      let g = c.Minic.Codegen.graph in
      ( g,
        fun ?monitor ?sink () ->
          let out, v = Kernels.Harness.run_circuit_full ?monitor ?sink b g in
          if not v.Kernels.Harness.functionally_correct then
            Fmt.epr "warning: %s produced wrong results@." name;
          out.Sim.Engine.stats )

let obs_kernel_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"KERNEL"
        ~doc:
          "Benchmark name (see $(b,crush list)) or paper example: fig1 \
           (unshared), fig2 (M1/M3 priority-shared), fig5.")

let max_events_arg =
  Arg.(
    value
    & opt int 1_000_000
    & info [ "max-events" ] ~docv:"N"
        ~doc:
          "Ring-buffer bound on recorded trace events/changes; past it \
           the trace is truncated (and says so) instead of growing \
           without bound.")

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Fmt.pr "wrote %s@." path

let trace_cmd =
  let doc =
    "Simulate a kernel with the trace recorders attached and write a VCD \
     waveform (channel valid/ready, credit counts, buffer occupancy — \
     open in GTKWave) plus a Chrome trace_event JSON (per-unit fire \
     spans, arbiter grants, credit counters — open in Perfetto)."
  in
  let vcd_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE"
          ~doc:"VCD output path (default $(i,KERNEL).vcd).")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:"Chrome trace output path (default $(i,KERNEL).trace.json).")
  in
  let run name strategy technique vcd_path chrome_path max_events =
    let g, runner = obs_subject name strategy technique in
    let vcd = Obs.Vcd.create ~max_changes:max_events g in
    let chrome = Obs.Chrome_trace.create ~max_events g in
    let stats =
      runner ~monitor:(Obs.Vcd.monitor vcd)
        ~sink:(Obs.Chrome_trace.sink chrome) ()
    in
    Fmt.pr "%s: %a (%d cycles, %d transfers)@." name Sim.Engine.pp_status
      stats.Sim.Engine.status stats.Sim.Engine.cycles
      stats.Sim.Engine.transfers;
    if Obs.Vcd.dropped vcd > 0 then
      Fmt.pr "vcd: truncated, %d changes dropped (raise --max-events)@."
        (Obs.Vcd.dropped vcd);
    if Obs.Chrome_trace.dropped chrome > 0 then
      Fmt.pr "chrome: truncated, %d events dropped (raise --max-events)@."
        (Obs.Chrome_trace.dropped chrome);
    write_file
      (Option.value vcd_path ~default:(name ^ ".vcd"))
      (Obs.Vcd.to_string vcd);
    write_file
      (Option.value chrome_path ~default:(name ^ ".trace.json"))
      (Obs.Chrome_trace.to_string chrome)
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ obs_kernel_arg $ strategy_arg $ technique_arg $ vcd_arg
      $ chrome_arg $ max_events_arg)

let profile_cmd =
  let doc =
    "Simulate a kernel with the metrics pass attached and print the \
     profile report: measured vs assumed II per loop, the most contended \
     shared unit, credit-counter pressure, top stalled channels with \
     stall reasons, busiest units and buffer occupancy."
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also append the full metrics record as one JSONL line to \
                $(docv).")
  in
  let top_arg =
    Arg.(
      value
      & opt int 8
      & info [ "top" ] ~docv:"N"
          ~doc:"List at most $(docv) stalled channels / busiest units.")
  in
  let run name strategy technique json_path top =
    let g, runner = obs_subject name strategy technique in
    let m = Obs.Metrics.create g in
    let stats = runner ~sink:(Obs.Metrics.sink m) () in
    let report =
      Obs.Metrics.finish m ~kernel:name
        ~total_cycles:stats.Sim.Engine.cycles
    in
    Fmt.pr "status: %a@." Sim.Engine.pp_status stats.Sim.Engine.status;
    Fmt.pr "%a" (Obs.Profile.pp_report ~top) report;
    (match json_path with
    | Some path ->
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
        output_string oc
          (Exec.Jsonl.to_string (Obs.Metrics.report_to_json report));
        output_string oc "\n";
        close_out oc;
        Fmt.pr "appended metrics record to %s@." path
    | None -> ());
    (* Scripted sweeps must not silently pass over a wedged circuit
       (same contract as [crush stats]). *)
    match stats.Sim.Engine.status with
    | Sim.Engine.Completed _ -> ()
    | _ -> exit 1
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ obs_kernel_arg $ strategy_arg $ technique_arg $ json_arg
      $ top_arg)

(* ------------------------------------------------------------------ *)
(* chaos: adversarial robustness sweep + fault-injection self-test     *)

let trials_arg =
  Arg.(
    value
    & opt int 25
    & info [ "trials" ] ~docv:"N" ~doc:"Chaos seeds to try per kernel.")

let seed_arg =
  Arg.(
    value
    & opt int 42
    & info [ "seed" ] ~docv:"S" ~doc:"Base seed; trial $(i,i) uses S + 7919i.")

let kernel_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "kernel" ] ~docv:"K"
        ~doc:"Restrict the sweep to one benchmark (default: all).")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:
          "Write the fault-injection forensics (text report and DOT \
           overlay FILE.dot) to $(docv).  Under supervision (see \
           $(b,--keep-going)) this is instead a schema-versioned JSON \
           campaign report: per-class counts plus one record per task.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Fan the (kernel, seed) trials across $(docv) domains.  Results \
           and output order are bit-identical to a serial sweep.")

let keep_going_arg =
  Arg.(
    value & flag
    & info [ "keep-going"; "k" ]
        ~doc:
          "Supervised sweep: classify every trial into the failure taxonomy \
           (ok / frontend / validation / deadlock / out-of-fuel / timeout / \
           crash) and keep draining the batch instead of aborting on the \
           first failure.  The exit code is that of the most severe class \
           observed (0, or 10..17).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout-s" ] ~docv:"SECONDS"
        ~doc:
          "Per-trial wall-clock budget (implies supervision).  The watchdog \
           is polled cooperatively inside the simulator; an overdue trial \
           is classified $(i,timeout) while its siblings keep running.")

let retries_arg =
  Arg.(
    value
    & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry transient failures (timeout, crash) up to $(docv) extra \
           times (implies supervision).  Jobs that still fail land in the \
           quarantine manifest next to the journal.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "JSONL checkpoint journal (implies supervision).  Every finished \
           trial is appended and flushed immediately; a rerun with the same \
           journal skips everything already recorded.")

let inject_faults_arg =
  Arg.(
    value & flag
    & info [ "inject-faults" ]
        ~doc:
          "Supervised mode: add the three Eq. 1 fault-injection circuits to \
           the sweep as tasks that $(i,must) classify as deadlocks; a fault \
           that completes or misclassifies fails the run.")

let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Run every simulation under the elastic-protocol sanitizers \
           ($(b,Sim.Sanitizer)); a violated invariant classifies the task \
           as $(b,sanitizer) instead of waiting for the wreckage to \
           quiesce into a deadlock.")

let auto_reduce_arg =
  Arg.(
    value & flag
    & info [ "auto-reduce" ]
        ~doc:
          "On a sanitizer violation, minimize the failing circuit with the \
           ddmin reducer and journal the path of the $(i,.repro.json) it \
           writes (implies $(b,--sanitize)).")

let repro_dir_arg =
  Arg.(
    value
    & opt string "repros"
    & info [ "repro-dir" ] ~docv:"DIR"
        ~doc:"Directory for minimized reproducers written by \
              $(b,--auto-reduce).")

let chaos_profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "After the sweep, re-run one chaos trial per kernel (the base \
           seed) with the metrics pass attached and print its profile \
           report — II, contention and stall attribution as seen under \
           perturbation.")

let chaos_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PREFIX"
        ~doc:
          "After the sweep, re-run one chaos trial per kernel (the base \
           seed) with the trace recorders attached and write \
           $(docv).$(i,KERNEL).vcd and $(docv).$(i,KERNEL).trace.json.")

(** The post-sweep observability pass of [chaos --profile/--trace]: one
    extra chaos-perturbed trial per kernel (base seed), compiled and
    shared exactly like the sweep's trials. *)
let chaos_observe ~seed ~profile ~trace benches =
  if profile || trace <> None then
    List.iter
      (fun (b : Kernels.Registry.bench) ->
        let name = b.Kernels.Registry.name in
        let c = Minic.Codegen.compile_source b.Kernels.Registry.source in
        ignore
          (Crush.Share.crush c.Minic.Codegen.graph
             ~critical_loops:c.Minic.Codegen.critical_loops);
        let g = c.Minic.Codegen.graph in
        let chaos = Sim.Chaos.default ~seed in
        let m = Obs.Metrics.create g in
        let vcd = Obs.Vcd.create g in
        let chrome = Obs.Chrome_trace.create g in
        let sinks =
          Obs.Metrics.sink m
          :: (if trace <> None then [ Obs.Chrome_trace.sink chrome ] else [])
        in
        let monitor =
          if trace <> None then Some (Obs.Vcd.monitor vcd) else None
        in
        let out, _v =
          Kernels.Harness.run_circuit_full ?monitor ~chaos
            ~sink:(Obs.Events.tee sinks) b g
        in
        if profile then
          Fmt.pr "%a"
            (Obs.Profile.pp_report ~top:5)
            (Obs.Metrics.finish m ~kernel:(name ^ "+chaos")
               ~total_cycles:out.Sim.Engine.stats.Sim.Engine.cycles);
        match trace with
        | Some prefix ->
            let write path contents =
              let oc = open_out path in
              output_string oc contents;
              close_out oc;
              Fmt.pr "wrote %s@." path
            in
            write (Fmt.str "%s.%s.vcd" prefix name) (Obs.Vcd.to_string vcd);
            write
              (Fmt.str "%s.%s.trace.json" prefix name)
              (Obs.Chrome_trace.to_string chrome)
        | None -> ())
      benches

let fault_slug = function
  | Crush.Faults.Overallocated_credits _ -> "overalloc"
  | Crush.Faults.Creditless_naive -> "creditless"
  | Crush.Faults.Reversed_rotation -> "rotation"

let fault_conv =
  let parse = function
    | "overalloc" -> Ok (Crush.Faults.Overallocated_credits 2)
    | "creditless" -> Ok Crush.Faults.Creditless_naive
    | "rotation" -> Ok Crush.Faults.Reversed_rotation
    | s ->
        Error
          (`Msg
            (Fmt.str "unknown fault %s (overalloc | creditless | rotation)" s))
  in
  let print ppf f = Fmt.string ppf (fault_slug f) in
  Arg.conv (parse, print)

let fault_circuit fault =
  Crush.Faults.inject (Crush.Paper_examples.fig1 ()) fault

(** Run [f] under a fresh sanitizer; on a violation, optionally minimize
    [g] and return the {!Exec.Outcome.Sanitizer_violation} carrying the
    repro path.  Reduction happens inside the task function — before the
    outcome is journalled — so a campaign's journal is bit-identical at
    any $(b,--jobs) level. *)
let sanitized ?deadline ~auto_reduce ~repro_dir ~name g f =
  match f (Sim.Sanitizer.monitor ()) with
  | result -> result
  | exception Sim.Sanitizer.Violation v ->
      let repro =
        if not auto_reduce then None
        else
          Option.map fst
            (Exec.Reduce.reduce_to_files ?deadline ~dir:repro_dir ~name
               ~fault:name ~invariant:v.Sim.Sanitizer.invariant g)
      in
      Exec.Outcome.Sanitizer_violation
        {
          cycle = v.Sim.Sanitizer.cycle;
          unit_label = v.Sim.Sanitizer.unit_label;
          invariant = v.Sim.Sanitizer.invariant;
          detail = v.Sim.Sanitizer.detail;
          repro;
        }

(** Sweep every CRUSH-shared kernel across chaos seeds: every trial must
    complete with outputs identical to the software reference.  The
    (kernel, trial) grid fans out over [jobs] domains; each task compiles
    and shares its own circuit, so tasks are fully independent, and
    results come back in submission order — the report reads exactly
    like a serial sweep.  Returns the number of failed trials. *)
let chaos_sweep ~jobs ~trials ~seed benches =
  let tasks =
    List.concat_map
      (fun (b : Kernels.Registry.bench) ->
        List.init trials (fun i -> (b, seed + (7919 * i))))
      benches
  in
  let verdicts =
    Exec.Campaign.map ~jobs
      (fun ((b : Kernels.Registry.bench), s) ->
        let c = Minic.Codegen.compile_source b.Kernels.Registry.source in
        ignore
          (Crush.Share.crush c.Minic.Codegen.graph
             ~critical_loops:c.Minic.Codegen.critical_loops);
        let chaos = Sim.Chaos.default ~seed:s in
        (s, Kernels.Harness.run_circuit ~chaos b c.Minic.Codegen.graph))
      tasks
  in
  let failures = ref 0 in
  List.iter
    (fun (b : Kernels.Registry.bench) ->
      let mine =
        List.filter_map
          (fun ((tb : Kernels.Registry.bench), r) ->
            if tb.Kernels.Registry.name = b.Kernels.Registry.name then Some r
            else None)
          (List.combine (List.map fst tasks) verdicts)
      in
      let failed =
        List.filter
          (fun (_, v) -> not v.Kernels.Harness.functionally_correct)
          mine
      in
      List.iter
        (fun (s, v) ->
          Fmt.pr "  FAIL seed %d: %a@." s Kernels.Harness.pp_verdict v)
        failed;
      if failed = [] then
        Fmt.pr "%-10s %d/%d chaos trials ok@." b.Kernels.Registry.name trials
          trials;
      failures := !failures + List.length failed)
    benches;
  !failures

(** Inject each Eq. 1 violation and insist the harness detects the
    deadlock and forensics blames the sharing wrapper.  Returns the
    number of undetected faults. *)
let chaos_fault_check ~report () =
  let misses = ref 0 in
  List.iter
    (fun fault ->
      let built = Crush.Paper_examples.fig1 () in
      let g = Crush.Faults.inject built fault in
      let out = Sim.Engine.run ~max_cycles:100_000 g in
      match Sim.Forensics.analyze out with
      | Some r when Sim.Forensics.core_contains r (Crush.Faults.in_wrapper g)
        ->
          Fmt.pr "fault detected: %s — %d-unit cyclic core@."
            (Crush.Faults.describe fault)
            (match r.Sim.Forensics.cores with
            | core :: _ -> List.length core.Sim.Forensics.members
            | [] -> 0);
          (match report with
          | Some path ->
              let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
              let ppf = Format.formatter_of_out_channel oc in
              Fmt.pf ppf "== %s ==@.%a@.@." (Crush.Faults.describe fault)
                Sim.Forensics.pp r;
              Format.pp_print_flush ppf ();
              close_out oc;
              let dot = path ^ ".dot" in
              let oc = open_out dot in
              output_string oc (Sim.Forensics.to_dot g r);
              close_out oc
          | None -> ())
      | Some _ ->
          incr misses;
          Fmt.pr "FAULT MISSED: %s deadlocked but the wrapper is not in any \
                  cyclic core@."
            (Crush.Faults.describe fault)
      | None ->
          incr misses;
          Fmt.pr "FAULT MISSED: %s did not deadlock (%a)@."
            (Crush.Faults.describe fault)
            Sim.Engine.pp_status out.Sim.Engine.stats.Sim.Engine.status)
    Crush.Faults.all;
  !misses

(* ------------------------------------------------------------------ *)
(* Supervised chaos: taxonomy, watchdogs, retry/quarantine, resume     *)

(** Re-wrap a failure outcome at another payload type (the failure
    constructors carry no payload, so this is a no-op in spirit; OCaml
    just needs the re-pack to change the phantom ['a]). *)
let refail : 'a Exec.Outcome.t -> 'b Exec.Outcome.t = function
  | Exec.Outcome.Ok _ -> assert false
  | Frontend_error { phase; loc; token; message } ->
      Frontend_error { phase; loc; token; message }
  | Validation_error { message } -> Validation_error { message }
  | Sim_deadlock { cycle; core } -> Sim_deadlock { cycle; core }
  | Out_of_fuel { fuel; still_firing; exit_tokens } ->
      Out_of_fuel { fuel; still_firing; exit_tokens }
  | Job_timeout { cycles } -> Job_timeout { cycles }
  | Worker_crash { exn; backtrace } -> Worker_crash { exn; backtrace }
  | Sanitizer_violation { cycle; unit_label; invariant; detail; repro } ->
      Sanitizer_violation { cycle; unit_label; invariant; detail; repro }
  | Worker_lost { shard; reason } -> Worker_lost { shard; reason }
  | Worker_killed { shard; after_s } -> Worker_killed { shard; after_s }

(** One supervised chaos task: a (kernel, chaos-seed) trial, or one of
    the deliberately broken Eq. 1 circuits that must deadlock. *)
type chaos_task =
  | Trial of Kernels.Registry.bench * int
  | Fault of Crush.Faults.fault

let chaos_key = function
  | Trial (b, s) -> Fmt.str "trial:%s:%d" b.Kernels.Registry.name s
  | Fault f -> Fmt.str "fault:%s" (Crush.Faults.describe f)

(* Journalled payload: (functionally correct, cycles). *)
let chaos_encode (correct, cycles) =
  Exec.Jsonl.Obj
    [ ("correct", Exec.Jsonl.Bool correct); ("cycles", Exec.Jsonl.Int cycles) ]

let chaos_decode j =
  let open Exec.Jsonl in
  match
    (Option.bind (member "correct" j) to_bool,
     Option.bind (member "cycles" j) to_int)
  with
  | Some c, Some n -> Some (c, n)
  | _ -> None

let run_chaos_task ?poll_every ~sanitize ~auto_reduce ~repro_dir ~deadline task
    =
  let with_monitor name g f =
    if sanitize then sanitized ~deadline ~auto_reduce ~repro_dir ~name g f
    else f (fun _ ~cycle:_ _ -> ())
  in
  match task with
  | Trial (b, s) ->
      let c = Minic.Codegen.compile_source b.Kernels.Registry.source in
      ignore
        (Crush.Share.crush c.Minic.Codegen.graph
           ~critical_loops:c.Minic.Codegen.critical_loops);
      let name = Fmt.str "trial_%s_%d" b.Kernels.Registry.name s in
      with_monitor name c.Minic.Codegen.graph (fun monitor ->
          let chaos = Sim.Chaos.default ~seed:s in
          let out, v =
            Kernels.Harness.run_circuit_full ?poll_every ~deadline ~monitor
              ~chaos b c.Minic.Codegen.graph
          in
          match Exec.Outcome.of_sim_run out with
          | Exec.Outcome.Ok _ ->
              Exec.Outcome.Ok
                ( v.Kernels.Harness.functionally_correct,
                  v.Kernels.Harness.cycles )
          | failure -> refail failure)
  | Fault fault ->
      let g = fault_circuit fault in
      with_monitor ("fault_" ^ fault_slug fault) g (fun monitor ->
          let out =
            Sim.Engine.run ~max_cycles:100_000 ?poll_every ~deadline ~monitor g
          in
          match Exec.Outcome.of_sim_run out with
          | Exec.Outcome.Ok stats ->
              Exec.Outcome.Ok (true, stats.Sim.Engine.cycles)
          | failure -> refail failure)

(** JSON campaign report (schema-versioned, like the journal), written
    atomically so a kill mid-report never leaves a torn file.  [results]
    are (journal key, outcome) pairs so the in-process and sharded
    sweeps share one writer; [shards = 0] means in-process. *)
let write_chaos_report path ~trials ~seed ~jobs ~shards ~journal_dups summary
    results =
  let open Exec.Jsonl in
  let task_json (key, o) =
    Obj
      [
        ("key", String key);
        ("class", String (Exec.Outcome.class_name o));
        ( "correct",
          match o with
          | Exec.Outcome.Ok (c, _) -> Bool c
          | _ -> Null );
      ]
  in
  let json =
    Obj
      [
        ("schema_version", Int Exec.Journal.schema_version);
        ("campaign", String "chaos");
        ("trials", Int trials);
        ("seed", Int seed);
        ("jobs", Int jobs);
        ("shards", Int shards);
        ("journal_duplicates", Int journal_dups);
        ( "counts",
          Obj
            [
              ("total", Int summary.Exec.Outcome.total);
              ("ok", Int summary.Exec.Outcome.n_ok);
              ("frontend", Int summary.Exec.Outcome.n_frontend);
              ("validation", Int summary.Exec.Outcome.n_validation);
              ("deadlock", Int summary.Exec.Outcome.n_deadlock);
              ("out_of_fuel", Int summary.Exec.Outcome.n_out_of_fuel);
              ("timeout", Int summary.Exec.Outcome.n_timeout);
              ("crash", Int summary.Exec.Outcome.n_crash);
              ("sanitizer", Int summary.Exec.Outcome.n_sanitizer);
              ("worker_lost", Int summary.Exec.Outcome.n_worker_lost);
              ("worker_killed", Int summary.Exec.Outcome.n_worker_killed);
            ] );
        ("tasks", List (List.map task_json results));
      ]
  in
  Exec.Journal.write_atomic path (fun oc ->
      output_string oc (to_string json);
      output_string oc "\n");
  Fmt.pr "wrote %s@." path

(** The supervised sweep: every trial resolves to a classified outcome,
    the batch always drains, and the summary table plus per-class exit
    code replace the legacy first-failure abort.  Fault-injection tasks
    are expected to classify as deadlocks; anything else is a miss. *)
let chaos_supervised ?poll_every ~jobs ~trials ~seed ~sup ~inject_faults
    ~sanitize ~auto_reduce ~repro_dir ~report benches =
  let tasks =
    List.concat_map
      (fun (b : Kernels.Registry.bench) ->
        List.init trials (fun i -> Trial (b, seed + (7919 * i))))
      benches
    @ (if inject_faults then List.map (fun f -> Fault f) Crush.Faults.all
       else [])
  in
  let pending, journal_dups =
    Exec.Campaign.pending_and_dups ~sup ~key:chaos_key tasks
  in
  if pending < List.length tasks then
    Fmt.pr "resuming: %d/%d tasks already journalled, %d to run@."
      (List.length tasks - pending)
      (List.length tasks) pending;
  if journal_dups > 0 then
    Fmt.pr
      "warning: journal carried %d superseded duplicate record(s) — a \
       replayed or merged sweep; latest record wins@."
      journal_dups;
  let results =
    Exec.Campaign.map_outcomes ~jobs ~sup ~key:chaos_key ~encode:chaos_encode
      ~decode:chaos_decode
      (run_chaos_task ?poll_every ~sanitize ~auto_reduce ~repro_dir)
      tasks
  in
  (* Trials: any non-[Ok] outcome is a failure; [Ok] with wrong results
     too.  Faults: [Sim_deadlock] is a detection — and under --sanitize,
     so is [Sanitizer_violation], which convicts strictly earlier; all
     else is a miss (a crash or timeout there is an infrastructure bug,
     not a detected deadlock). *)
  let wrong = ref 0 and missed = ref 0 in
  List.iter
    (fun (task, o) ->
      match (task, o) with
      | Trial _, Exec.Outcome.Ok (true, _) -> ()
      | Trial _, Exec.Outcome.Ok (false, cycles) ->
          incr wrong;
          Fmt.pr "  FAIL %-24s completed (%d cycles) with WRONG RESULTS@."
            (chaos_key task) cycles
      | Trial _, failure ->
          Fmt.pr "  FAIL %-24s %a@." (chaos_key task)
            (Exec.Outcome.pp Fmt.nop) failure
      | Fault _, Exec.Outcome.Sim_deadlock { cycle; _ } ->
          Fmt.pr "fault detected: %s — deadlock at cycle %d@." (chaos_key task)
            cycle
      | Fault _, Exec.Outcome.Sanitizer_violation { cycle; invariant; repro; _ }
        when sanitize ->
          Fmt.pr "fault convicted: %s — %s at cycle %d%a@." (chaos_key task)
            invariant cycle
            Fmt.(option (any ", repro " ++ string))
            repro
      | Fault _, o ->
          incr missed;
          Fmt.pr "FAULT MISSED: %s classified %s (expected deadlock)@."
            (chaos_key task) (Exec.Outcome.class_name o))
    results;
  let trial_outcomes =
    List.filter_map
      (function Trial _, o -> Some o | Fault _, _ -> None)
      results
  in
  let summary = Exec.Outcome.summarize trial_outcomes in
  Fmt.pr "%a@." Exec.Outcome.pp_summary summary;
  let code = Exec.Outcome.summary_exit_code summary in
  (if !wrong > 0 || !missed > 0 || code <> 0 then
     match sup.Exec.Campaign.journal with
     | Some j when Sys.file_exists (Exec.Journal.quarantine_path j) ->
         Fmt.pr "quarantine manifest: %s@." (Exec.Journal.quarantine_path j)
     | _ -> ());
  Option.iter
    (fun path ->
      write_chaos_report path ~trials ~seed ~jobs ~shards:0 ~journal_dups
        summary
        (List.map (fun (t, o) -> (chaos_key t, o)) results))
    report;
  if Exec.Interrupt.triggered () then begin
    (match sup.Exec.Campaign.journal with
    | Some j ->
        Fmt.pr "interrupted: journal flushed — rerun with --journal %s to \
                resume@."
          j
    | None ->
        Fmt.pr "interrupted: partial sweep (no --journal, a rerun starts \
                over)@.");
    exit Exec.Interrupt.exit_code
  end;
  if !wrong > 0 || !missed > 0 then exit 1;
  if code <> 0 then exit code

(* ------------------------------------------------------------------ *)
(* Sharded chaos: crash-isolated worker processes (Exec.Supervisor)    *)

(** The crash-chaos self-test ships one deliberately wedged job: a hot
    loop that never polls a deadline and never heartbeats, which only
    the supervisor's preemptive SIGKILL can stop.  Its key is excluded
    from the journal byte-comparison (a serial run would never finish
    it). *)
let hang_key = "hang:injected"

let hang_spec = Exec.Jsonl.Obj [ ("t", Exec.Jsonl.String "hang") ]

(** Self-describing job spec shipped to chaos workers over the wire. *)
let chaos_spec_of_task = function
  | Trial (b, s) ->
      Exec.Jsonl.Obj
        [
          ("t", Exec.Jsonl.String "trial");
          ("bench", Exec.Jsonl.String b.Kernels.Registry.name);
          ("seed", Exec.Jsonl.Int s);
        ]
  | Fault f ->
      Exec.Jsonl.Obj
        [
          ("t", Exec.Jsonl.String "fault");
          ("fault", Exec.Jsonl.String (fault_slug f));
        ]

let fault_of_slug = function
  | "overalloc" -> Crush.Faults.Overallocated_credits 2
  | "creditless" -> Crush.Faults.Creditless_naive
  | "rotation" -> Crush.Faults.Reversed_rotation
  | s -> failwith ("unknown fault slug " ^ s)

let chaos_task_of_spec j =
  let open Exec.Jsonl in
  match Option.bind (member "t" j) to_str with
  | Some "trial" -> (
      match
        ( Option.bind (member "bench" j) to_str,
          Option.bind (member "seed" j) to_int )
      with
      | Some b, Some s -> `Task (Trial (Kernels.Registry.find b, s))
      | _ -> failwith "malformed trial spec")
  | Some "fault" -> (
      match Option.bind (member "fault" j) to_str with
      | Some slug -> `Task (Fault (fault_of_slug slug))
      | None -> failwith "malformed fault spec")
  | Some "hang" -> `Hang
  | _ -> failwith "malformed chaos spec"

(** The worker half of [chaos --shards]: decode each job spec and run it
    through the {e exact} serial retry loop
    ({!Exec.Campaign.run_with_retries}), so journalled attempts — and
    therefore journal bytes — match a [--jobs 1] run.  The supervisor
    heartbeat piggybacks on the engine's cooperative deadline poll. *)
let chaos_worker_run opts =
  let flag_true k = Exec.Supervisor.flag opts k = Some "true" in
  let timeout_s = Exec.Supervisor.flag_float opts "timeout-s" in
  let retries =
    Option.value ~default:0 (Exec.Supervisor.flag_int opts "retries")
  in
  let poll_every = Exec.Supervisor.flag_int opts "poll-every" in
  let sanitize = flag_true "sanitize" in
  let auto_reduce = flag_true "auto-reduce" in
  let repro_dir =
    Option.value ~default:"repros" (Exec.Supervisor.flag opts "repro-dir")
  in
  fun ~(ctx : Exec.Supervisor.job_ctx) spec ->
    match chaos_task_of_spec spec with
    | `Hang ->
        (* Burn CPU forever without polling anything: simulates a hard
           hang the cooperative watchdog cannot classify. *)
        while true do
          ignore (Sys.opaque_identity 0)
        done;
        assert false
    | `Task task ->
        let o, attempts =
          Exec.Campaign.run_with_retries ?timeout_s ~retries (fun ~deadline ->
              let deadline () =
                ctx.Exec.Supervisor.heartbeat ();
                deadline ()
              in
              run_chaos_task ?poll_every ~sanitize ~auto_reduce ~repro_dir
                ~deadline task)
        in
        (Exec.Outcome.to_json chaos_encode o, attempts)

let string_has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let read_lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  end

(** [chaos --shards N]: the supervised sweep with every shard in its own
    crash-isolated worker process ({!Exec.Supervisor}).  With
    [crash_workers > 0] this doubles as the crash-chaos self-test: that
    many seeded SIGKILLs are delivered to busy workers mid-campaign,
    one hard-hang job is injected (preempted only by the supervisor's
    wall-clock/heartbeat kill), and afterwards the merged journal is
    compared byte-for-byte against a fresh serial [--jobs 1] rerun of
    the same tasks. *)
let chaos_sharded ~shards ~trials ~seed ~timeout_s ~retries ~journal ~fsync
    ~heartbeat_s ~poll_every ~sanitize ~auto_reduce ~repro_dir ~inject_faults
    ~crash_workers ~report benches =
  let tasks =
    List.concat_map
      (fun (b : Kernels.Registry.bench) ->
        List.init trials (fun i -> Trial (b, seed + (7919 * i))))
      benches
    @ (if inject_faults then List.map (fun f -> Fault f) Crush.Faults.all
       else [])
  in
  let journal_path = Option.value journal ~default:"chaos-shards.jsonl" in
  let serial_path = journal_path ^ ".serial" in
  let self_test = crash_workers > 0 in
  (* The self-test asserts recovery re-runs work, so both sides must
     start from scratch: a resumed journal would hide the recovery. *)
  if self_test then begin
    let rm p = if Sys.file_exists p then Sys.remove p in
    rm journal_path;
    rm (Exec.Journal.quarantine_path journal_path);
    rm serial_path;
    rm (Exec.Journal.quarantine_path serial_path);
    for i = 0 to shards - 1 do
      rm (Exec.Shard.shard_journal journal_path i)
    done
  end;
  let sup_tasks =
    List.map
      (fun t ->
        { Exec.Supervisor.key = chaos_key t; spec = chaos_spec_of_task t })
      tasks
    @
    if self_test then [ { Exec.Supervisor.key = hang_key; spec = hang_spec } ]
    else []
  in
  let worker_args =
    [ "__worker"; "--kind"; "chaos" ]
    @ (match timeout_s with
      | Some t -> [ "--opt"; Fmt.str "timeout-s=%g" t ]
      | None -> [])
    @ [ "--opt"; Fmt.str "retries=%d" retries ]
    @ (match poll_every with
      | Some n -> [ "--opt"; Fmt.str "poll-every=%d" n ]
      | None -> [])
    @ (if sanitize then [ "--opt"; "sanitize=true" ] else [])
    @ (if auto_reduce then [ "--opt"; "auto-reduce=true" ] else [])
    @ [ "--opt"; "repro-dir=" ^ repro_dir ]
  in
  let r =
    Exec.Supervisor.run ~shards
      ?hard_timeout_s:(Option.map (fun t -> (4. *. t) +. 1.) timeout_s)
      ~heartbeat_s ~retries ~seed ~journal:journal_path ~fsync
      ~chaos_kills:crash_workers ~worker_args ~tasks:sup_tasks ()
  in
  let decoded =
    List.map
      (fun (key, _attempts, oj) ->
        match Exec.Outcome.of_json chaos_decode oj with
        | Some o -> (key, o)
        | None ->
            ( key,
              Exec.Outcome.Worker_crash
                { exn = "undecodable journal outcome"; backtrace = "" } ))
      r.Exec.Supervisor.outcomes
  in
  let wrong = ref 0 and missed = ref 0 in
  List.iter
    (fun (key, o) ->
      if string_has_prefix ~prefix:"trial:" key then (
        match o with
        | Exec.Outcome.Ok (true, _) -> ()
        | Exec.Outcome.Ok (false, cycles) ->
            incr wrong;
            Fmt.pr "  FAIL %-24s completed (%d cycles) with WRONG RESULTS@."
              key cycles
        | failure ->
            Fmt.pr "  FAIL %-24s %a@." key (Exec.Outcome.pp Fmt.nop) failure)
      else if key = hang_key then (
        match o with
        | Exec.Outcome.Worker_killed { after_s; shard } ->
            Fmt.pr
              "hang preempted: shard %d SIGKILLed after %.1fs (classified \
               worker-killed)@."
              shard after_s
        | Exec.Outcome.Worker_lost { shard; reason } ->
            Fmt.pr "hang preempted: shard %d lost (%s)@." shard reason
        | o ->
            incr missed;
            Fmt.pr
              "HANG SURVIVED: %s classified %s (expected worker-killed)@." key
              (Exec.Outcome.class_name o))
      else
        match o with
        | Exec.Outcome.Sim_deadlock { cycle; _ } ->
            Fmt.pr "fault detected: %s — deadlock at cycle %d@." key cycle
        | Exec.Outcome.Sanitizer_violation { cycle; invariant; repro; _ }
          when sanitize ->
            Fmt.pr "fault convicted: %s — %s at cycle %d%a@." key invariant
              cycle
              Fmt.(option (any ", repro " ++ string))
              repro
        | o ->
            incr missed;
            Fmt.pr "FAULT MISSED: %s classified %s (expected deadlock)@." key
              (Exec.Outcome.class_name o))
    decoded;
  let trial_outcomes =
    List.filter_map
      (fun (k, o) -> if string_has_prefix ~prefix:"trial:" k then Some o else None)
      decoded
  in
  let summary = Exec.Outcome.summarize trial_outcomes in
  Fmt.pr "%a@." Exec.Outcome.pp_summary summary;
  let st : Exec.Supervisor.stats = r.Exec.Supervisor.stats in
  Fmt.pr
    "shards: %d worker(s), %d resumed, %d chaos kill(s), %d preempted, %d \
     lost, %d respawn(s), %d retired, %d poisoned, %d merged dup(s), %d \
     resume dup(s)@."
    shards st.n_resumed st.n_chaos_kills st.n_preempted st.n_lost
    st.n_respawns st.n_retired st.n_poisoned st.merged_dups st.n_resume_dups;
  if st.n_resume_dups > 0 then
    Fmt.pr
      "warning: resume superseded %d duplicate journal record(s) — a \
       replayed or merged sweep; latest record wins@."
      st.n_resume_dups;
  let self_test_failed = ref false in
  if self_test then begin
    Fmt.pr "crash-chaos: serial rerun for the byte-identity check...@.";
    let sup =
      Exec.Campaign.supervision ?timeout_s ~retries ~journal:serial_path
        ~fsync ?poll_every ()
    in
    ignore
      (Exec.Campaign.map_outcomes ~jobs:1 ~sup ~key:chaos_key
         ~encode:chaos_encode ~decode:chaos_decode
         (run_chaos_task ?poll_every ~sanitize ~auto_reduce ~repro_dir)
         tasks);
    let keep l =
      match Exec.Journal.entry_of_line l with
      | Some e -> e.Exec.Journal.key <> hang_key
      | None -> true
    in
    let merged = List.filter keep (read_lines journal_path) in
    let serial = read_lines serial_path in
    if merged = serial then
      Fmt.pr
        "crash-chaos: merged journal bit-identical to the serial run (%d \
         record(s))@."
        (List.length serial)
    else begin
      self_test_failed := true;
      Fmt.pr
        "crash-chaos: MERGED JOURNAL DIVERGES from the serial run (%d vs %d \
         record(s))@."
        (List.length merged) (List.length serial);
      let rec first_diff i = function
        | [], [] -> ()
        | l :: _, [] | [], l :: _ ->
            Fmt.pr "  first unmatched record %d: %s@." i l
        | a :: xs, b :: ys ->
            if a = b then first_diff (i + 1) (xs, ys)
            else
              Fmt.pr "  record %d differs:@.    merged: %s@.    serial: %s@."
                i a b
      in
      first_diff 0 (merged, serial)
    end
  end;
  let code = Exec.Outcome.summary_exit_code summary in
  (if !wrong > 0 || !missed > 0 || !self_test_failed || code <> 0 then
     if Sys.file_exists (Exec.Journal.quarantine_path journal_path) then
       Fmt.pr "quarantine manifest: %s@."
         (Exec.Journal.quarantine_path journal_path));
  Option.iter
    (fun path ->
      write_chaos_report path ~trials ~seed ~jobs:shards ~shards
        ~journal_dups:(st.merged_dups + st.n_resume_dups) summary decoded)
    report;
  if Exec.Interrupt.triggered () then begin
    Fmt.pr
      "interrupted: journal flushed — rerun with --journal %s to resume@."
      journal_path;
    exit Exec.Interrupt.exit_code
  end;
  if !wrong > 0 || !missed > 0 || !self_test_failed then exit 1;
  if code <> 0 then exit code

(** Run the fault-schedule explorer over [scenarios]; returns
    (rows, runs, violations) where [rows] is the JSONL verdict table. *)
let faultfs_explore ?faults ?only_op ~root scenarios =
  let rows = ref [] in
  let runs = ref 0 in
  let bad = ref 0 in
  List.iter
    (fun (s : Exec.Faultfs.scenario) ->
      let r = Exec.Faultfs.explore ?faults ?only_op ~root s in
      let viol = Exec.Faultfs.violations r in
      runs := !runs + List.length r.Exec.Faultfs.verdicts;
      bad := !bad + List.length viol;
      List.iter
        (fun v ->
          rows :=
            Exec.Faultfs.verdict_to_json ~scenario_name:s.Exec.Faultfs.name v
            :: !rows)
        r.Exec.Faultfs.verdicts;
      Fmt.pr "faultfs: %-9s %3d ops, %4d injected runs, %d violation(s)@."
        s.Exec.Faultfs.name r.Exec.Faultfs.total_ops
        (List.length r.Exec.Faultfs.verdicts)
        (List.length viol);
      List.iter
        (fun (v : Exec.Faultfs.verdict) ->
          List.iter
            (fun msg ->
              Fmt.pr "  VIOLATION %s op %d %s (%s): %s@."
                s.Exec.Faultfs.name v.Exec.Faultfs.op
                (Exec.Fio.fault_to_string v.Exec.Faultfs.fault)
                (Exec.Faultfs.outcome_to_string v.Exec.Faultfs.outcome)
                msg)
            v.Exec.Faultfs.violations)
        viol)
    scenarios;
  (List.rev !rows, !runs, !bad)

let chaos_cmd =
  let doc =
    "Adversarial robustness check: fuzz CRUSH-shared kernels with seeded \
     chaos (stalls, latency inflation, port jitter, arbiter permutation) \
     expecting unchanged results, then inject Eq. 1 violations expecting \
     detected deadlocks whose forensics blame the sharing wrapper.  With \
     $(b,--keep-going), $(b,--timeout-s), $(b,--retries), $(b,--journal) or \
     $(b,--inject-faults) the sweep runs supervised: every trial resolves \
     to a classified outcome (the batch always drains), transient failures \
     retry and quarantine, and the journal makes reruns resume instead of \
     restart."
  in
  let run trials seed kernel report jobs keep_going timeout_s retries journal
      inject_faults sanitize auto_reduce repro_dir profile trace shards
      crash_workers fsync poll_every heartbeat_s faultfs =
    Exec.Interrupt.install ();
    if faultfs then begin
      (* The durability counterpart of the circuit chaos below: explore
         every I/O fault schedule before trusting the journals the sweep
         itself leans on. *)
      let _, runs, bad =
        faultfs_explore ~root:"_build/faultfs" (Exec.Faultfs.builtin ())
      in
      if bad > 0 then begin
        Fmt.pr "chaos: faultfs found %d violation(s) across %d runs@." bad
          runs;
        exit 1
      end;
      Fmt.pr "chaos: faultfs clean (%d injected runs)@." runs
    end;
    (match report with
    | Some path -> if Sys.file_exists path then Sys.remove path
    | None -> ());
    let sanitize = sanitize || auto_reduce in
    let benches =
      match kernel with
      | Some k -> [ Kernels.Registry.find k ]
      | None -> Kernels.Registry.all
    in
    (* Asking for crash chaos without a shard count means "shard it". *)
    let shards = if crash_workers > 0 && shards = 0 then 2 else shards in
    let supervised =
      keep_going || inject_faults || timeout_s <> None || retries > 0
      || journal <> None || sanitize
    in
    if shards > 0 then begin
      chaos_observe ~seed ~profile ~trace benches;
      chaos_sharded ~shards ~trials ~seed ~timeout_s ~retries ~journal ~fsync
        ~heartbeat_s ~poll_every ~sanitize ~auto_reduce ~repro_dir
        ~inject_faults ~crash_workers ~report benches
    end
    else if supervised then begin
      let sup =
        Exec.Campaign.supervision ?timeout_s ~retries ?journal ~fsync
          ?poll_every ()
      in
      chaos_observe ~seed ~profile ~trace benches;
      chaos_supervised ?poll_every ~jobs ~trials ~seed ~sup ~inject_faults
        ~sanitize ~auto_reduce ~repro_dir ~report benches
    end
    else begin
      let failures = chaos_sweep ~jobs ~trials ~seed benches in
      let misses = chaos_fault_check ~report () in
      chaos_observe ~seed ~profile ~trace benches;
      if failures = 0 && misses = 0 then
        Fmt.pr "chaos: all %d kernels x %d trials ok, %d/%d faults detected@."
          (List.length benches) trials
          (List.length Crush.Faults.all)
          (List.length Crush.Faults.all)
      else begin
        Fmt.pr "chaos: %d trial failure(s), %d undetected fault(s)@." failures
          misses;
        exit 1
      end
    end
  in
  let shards_arg =
    Arg.(
      value
      & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run the sweep across $(docv) crash-isolated worker processes \
             (implies supervision).  Each shard journals privately; the \
             merged journal is bit-identical to a $(b,--jobs 1) run.")
  in
  let crash_workers_arg =
    Arg.(
      value
      & opt int 0
      & info [ "crash-workers" ] ~docv:"N"
          ~doc:
            "Crash-chaos self-test: SIGKILL $(docv) random busy workers at \
             seeded points mid-campaign, inject one hard-hang job that only \
             the supervisor's preemptive kill can stop, then assert the \
             sweep recovers and its merged journal is byte-identical to a \
             fresh serial rerun.")
  in
  let fsync_arg =
    Arg.(
      value & flag
      & info [ "fsync" ]
          ~doc:
            "fsync every journal record (shard and campaign journals), so \
             checkpoints survive machine death, not just process death.")
  in
  let poll_every_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "poll-every" ] ~docv:"CYCLES"
          ~doc:
            "Poll the cooperative watchdog deadline every $(docv) simulated \
             cycles (default 64); lower values tighten timeout latency at a \
             small per-cycle cost.")
  in
  let heartbeat_arg =
    Arg.(
      value
      & opt float 5.0
      & info [ "heartbeat-s" ] ~docv:"SECONDS"
          ~doc:
            "Sharded mode: SIGKILL a worker silent for longer than $(docv) \
             (no heartbeat, no result).  0 disables the silence watchdog.")
  in
  let chaos_faultfs_arg =
    Arg.(
      value & flag
      & info [ "faultfs" ]
          ~doc:
            "Run the exhaustive I/O fault-schedule explorer (see \
             $(b,crush faultfs)) over the built-in durability scenarios \
             before the sweep; exit 1 on any recovery-invariant \
             violation.")
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ trials_arg $ seed_arg $ kernel_arg $ report_arg $ jobs_arg
      $ keep_going_arg $ timeout_arg $ retries_arg $ journal_arg
      $ inject_faults_arg $ sanitize_arg $ auto_reduce_arg $ repro_dir_arg
      $ chaos_profile_arg $ chaos_trace_arg $ shards_arg $ crash_workers_arg
      $ fsync_arg $ poll_every_arg $ heartbeat_arg $ chaos_faultfs_arg)

(* ------------------------------------------------------------------ *)
(* sanitize: sanitizer self-test + clean-circuit zero-violation sweep  *)

(** Each Eq. 1 fault circuit must be convicted by the sanitizers
    strictly earlier than the engine's quiescence-based deadlock
    detection would have reported it.  Returns the failure count. *)
let sanitize_fault_check () =
  let failures = ref 0 in
  List.iter
    (fun fault ->
      let unmonitored = Sim.Engine.run ~max_cycles:100_000 (fault_circuit fault) in
      let deadlock_cycle =
        match unmonitored.Sim.Engine.stats.Sim.Engine.status with
        | Sim.Engine.Deadlock c -> c
        | _ -> max_int
      in
      match
        Sim.Engine.run ~max_cycles:100_000
          ~monitor:(Sim.Sanitizer.monitor ())
          (fault_circuit fault)
      with
      | (_ : Sim.Engine.outcome) ->
          incr failures;
          Fmt.pr "SANITIZER MISS: %s raised no violation@."
            (Crush.Faults.describe fault)
      | exception Sim.Sanitizer.Violation v ->
          if v.Sim.Sanitizer.cycle < deadlock_cycle then
            Fmt.pr "convicted %-10s %-22s cycle %d (quiescence deadlock: %s)@."
              (fault_slug fault) v.Sim.Sanitizer.invariant
              v.Sim.Sanitizer.cycle
              (if deadlock_cycle = max_int then "never"
               else string_of_int deadlock_cycle)
          else begin
            incr failures;
            Fmt.pr "SANITIZER LATE: %s convicted at cycle %d, not earlier \
                    than deadlock cycle %d@."
              (fault_slug fault) v.Sim.Sanitizer.cycle deadlock_cycle
          end)
    Crush.Faults.all;
  !failures

(** Every kernel x codegen strategy x chaos seed (plus one unperturbed
    run each) must complete, correctly, with zero sanitizer violations.
    Returns the failure count. *)
let sanitize_sweep ~trials ~seed benches =
  let failures = ref 0 in
  List.iter
    (fun (b : Kernels.Registry.bench) ->
      List.iter
        (fun strategy ->
          for t = 0 to trials do
            let c =
              Minic.Codegen.compile_source ~strategy b.Kernels.Registry.source
            in
            ignore
              (Crush.Share.crush c.Minic.Codegen.graph
                 ~critical_loops:c.Minic.Codegen.critical_loops);
            let chaos =
              if t = 0 then None
              else Some (Sim.Chaos.default ~seed:(seed + (7919 * t)))
            in
            let where () =
              Fmt.str "%s/%s%s" b.Kernels.Registry.name
                (Minic.Codegen.string_of_strategy strategy)
                (if t = 0 then "" else Fmt.str "/seed+%d" (7919 * t))
            in
            match
              Kernels.Harness.run_circuit
                ~monitor:(Sim.Sanitizer.monitor ())
                ?chaos b c.Minic.Codegen.graph
            with
            | v ->
                if not v.Kernels.Harness.functionally_correct then begin
                  incr failures;
                  Fmt.pr "  FAIL %s: %a@." (where ()) Kernels.Harness.pp_verdict
                    v
                end
            | exception Sim.Sanitizer.Violation v ->
                incr failures;
                Fmt.pr "  VIOLATION %s: %a@." (where ())
                  Sim.Sanitizer.pp_violation v
          done)
        [ Minic.Codegen.Bb_ordered; Minic.Codegen.Fast_token ])
    benches;
  !failures

let skip_faults_arg =
  Arg.(
    value & flag
    & info [ "skip-faults" ]
        ~doc:"Skip the fault-injection self-test; run only the clean sweep.")

let sanitize_cmd =
  let doc =
    "Self-test the elastic-protocol sanitizers: the three Eq. 1 fault \
     circuits must be convicted strictly earlier than quiescence-based \
     deadlock detection, and every kernel x codegen strategy x chaos seed \
     must complete with zero violations (the sanitizers never cry wolf)."
  in
  let run trials seed kernel skip_faults =
    let benches =
      match kernel with
      | Some k -> [ Kernels.Registry.find k ]
      | None -> Kernels.Registry.all
    in
    let fault_failures = if skip_faults then 0 else sanitize_fault_check () in
    let sweep_failures = sanitize_sweep ~trials ~seed benches in
    if fault_failures = 0 && sweep_failures = 0 then
      Fmt.pr
        "sanitize: %d kernels x 2 strategies x %d runs clean%s@."
        (List.length benches) (trials + 1)
        (if skip_faults then "" else ", all 3 faults convicted early")
    else begin
      Fmt.pr "sanitize: %d self-test failure(s), %d sweep failure(s)@."
        fault_failures sweep_failures;
      exit 1
    end
  in
  Cmd.v (Cmd.info "sanitize" ~doc)
    Term.(const run $ trials_arg $ seed_arg $ kernel_arg $ skip_faults_arg)

(* ------------------------------------------------------------------ *)
(* reduce: ddmin minimization of failing circuits                      *)

let reduce_cmd =
  let doc =
    "Minimize a failing circuit with the ddmin reducer: shrink one of the \
     Eq. 1 fault circuits to a handful of units that still trip the same \
     sanitizer invariant ($(b,--fault)), or replay a previously written \
     reproducer ($(b,--replay))."
  in
  let fault_arg =
    Arg.(
      value
      & opt (some fault_conv) None
      & info [ "fault" ] ~docv:"F"
          ~doc:"Fault circuit to minimize: overalloc, creditless or rotation.")
  in
  let out_arg =
    Arg.(
      value
      & opt string "repros"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory for the $(i,.repro.json) and DOT outputs.")
  in
  let budget_arg =
    Arg.(
      value
      & opt int 250
      & info [ "budget" ] ~docv:"N"
          ~doc:"Predicate-evaluation budget (validate + simulate per \
                candidate).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-run a $(i,.repro.json) and check it still trips the \
                recorded invariant at the recorded cycle.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-s" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget for the whole reduction.  When it expires \
             the reducer stops, keeps the smallest reproducer found so far \
             (still written and valid), and exits 14.")
  in
  let run fault out budget replay timeout_s =
    match (replay, fault) with
    | Some path, _ -> (
        match Exec.Reduce.load_repro path with
        | None ->
            Fmt.epr "cannot load %s@." path;
            exit 1
        | Some (meta, g) -> (
            match Exec.Reduce.simulate ~max_cycles:100_000 g with
            | Some v
              when v.Sim.Sanitizer.invariant = meta.Exec.Reduce.invariant
                   && v.Sim.Sanitizer.cycle = meta.Exec.Reduce.cycle ->
                Fmt.pr "repro %s: %s at cycle %d, as recorded@." path
                  meta.Exec.Reduce.invariant meta.Exec.Reduce.cycle
            | Some v ->
                Fmt.pr
                  "repro %s DRIFTED: got %s at cycle %d, recorded %s at %d@."
                  path v.Sim.Sanitizer.invariant v.Sim.Sanitizer.cycle
                  meta.Exec.Reduce.invariant meta.Exec.Reduce.cycle;
                exit 1
            | None ->
                Fmt.pr "repro %s no longer trips any invariant@." path;
                exit 1))
    | None, None ->
        Fmt.epr "reduce: need --fault or --replay@.";
        exit 2
    | None, Some fault -> (
        let g = fault_circuit fault in
        let before = Dataflow.Graph.live_unit_count g in
        let deadline =
          Option.map
            (fun s ->
              let t0 = Unix.gettimeofday () in
              fun () -> Unix.gettimeofday () -. t0 >= s)
            timeout_s
        in
        match
          Exec.Reduce.reduce_to_files ?deadline ~budget ~dir:out
            ~name:("fault_" ^ fault_slug fault)
            ~fault:(Crush.Faults.describe fault)
            g
        with
        | None ->
            Fmt.pr "reduce: %s trips no sanitizer invariant@."
              (fault_slug fault);
            exit 1
        | Some (path, r) ->
            Fmt.pr
              "reduced %s: %d -> %d units (%d predicate evals), %s at cycle \
               %d@.wrote %s@."
              (fault_slug fault) before r.Exec.Reduce.kept_units
              r.Exec.Reduce.evals
              r.Exec.Reduce.violation.Sim.Sanitizer.invariant
              r.Exec.Reduce.violation.Sim.Sanitizer.cycle path;
            if r.Exec.Reduce.timed_out then begin
              Fmt.pr
                "reduce: wall-clock budget hit; kept the best-so-far \
                 reproducer@.";
              (* 14 = the Job_timeout class of the exit-code contract. *)
              exit 14
            end)
  in
  Cmd.v (Cmd.info "reduce" ~doc)
    Term.(
      const run $ fault_arg $ out_arg $ budget_arg $ replay_arg $ timeout_arg)

(* ------------------------------------------------------------------ *)
(* serve: the fault-tolerant compile-and-simulate daemon               *)

let serve_cmd =
  let doc =
    "Long-lived compile-and-simulate daemon: POST mini-C, a registry \
     kernel or a circuit JSON to /v1/submit and get the classified \
     outcome back over HTTP.  Every request carries a deadline that \
     propagates into the simulator's cooperative watchdog; per-tenant \
     token buckets (requests/s and simulation fuel/s) and a bounded \
     dispatch queue shed overload with 429 + Retry-After; results are \
     cached by content hash with single-flight dedup; each job runs in \
     a separate worker process so a crash or SIGKILL costs exactly one \
     request (503, worker-lost).  SIGTERM/SIGINT drains gracefully: \
     in-flight requests finish, workers shut down, and the exit line \
     reports leaked fds and surviving workers."
  in
  let host_arg =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port_arg =
    Arg.(
      value
      & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Listen port; 0 picks an ephemeral port (printed at boot).")
  in
  let workers_arg =
    Arg.(
      value
      & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Worker process pool size.")
  in
  let max_conns_arg =
    Arg.(
      value
      & opt int 32
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Concurrent connection cap; excess connections get 429.")
  in
  let queue_depth_arg =
    Arg.(
      value
      & opt int 16
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Dispatch-queue watermark: requests waiting for a worker past \
             $(docv) are shed with 429 + Retry-After.")
  in
  let cache_arg =
    Arg.(
      value
      & opt int 256
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Content-hash result cache entries (FIFO eviction).")
  in
  let req_rate_arg =
    Arg.(
      value
      & opt float 50.0
      & info [ "req-rate" ] ~docv:"R"
          ~doc:"Per-tenant request tokens per second (burst 2x).")
  in
  let fuel_rate_arg =
    Arg.(
      value
      & opt float 5e6
      & info [ "fuel-rate" ] ~docv:"R"
          ~doc:
            "Per-tenant simulation-fuel tokens per second; each request \
             charges its max_cycles (burst 4x).")
  in
  let header_timeout_arg =
    Arg.(
      value
      & opt float 2.0
      & info [ "header-timeout-s" ] ~docv:"S"
          ~doc:"Slow-loris bound: whole request must arrive within $(docv).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt float 10.0
      & info [ "deadline-s" ] ~docv:"S"
          ~doc:"Default request deadline when the client sends no \
                deadline_ms.")
  in
  let serve_heartbeat_arg =
    Arg.(
      value
      & opt float 5.0
      & info [ "heartbeat-s" ] ~docv:"S"
          ~doc:"SIGKILL a worker silent for longer than $(docv); 0 \
                disables.")
  in
  let serve_journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append every completed request (key, attempts, outcome) to \
             $(docv); preexisting duplicate-key records are counted and \
             surfaced in /v1/stats.")
  in
  let serve_seed_arg =
    Arg.(
      value
      & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Retry-After jitter seed.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Log per-connection errors.")
  in
  let batch_domains_arg =
    Arg.(
      value
      & opt int 2
      & info [ "batch-domains" ] ~docv:"N"
          ~doc:
            "In-process batch tier: $(docv) domains replay cache-warm, \
             unmonitored, short-deadline jobs over compiled engine images \
             without a worker round-trip.  0 disables the tier (every job \
             runs in a worker process).")
  in
  let image_cache_mb_arg =
    Arg.(
      value
      & opt int 256
      & info [ "image-cache-mb" ] ~docv:"MB"
          ~doc:
            "Byte budget for the compiled-image cache (LRU, single-flight; \
             keyed by circuit digest, so jobs differing only in seed, fuel \
             or sanitize share one image).")
  in
  let batch_deadline_arg =
    Arg.(
      value
      & opt float 15.0
      & info [ "batch-deadline-s" ] ~docv:"S"
          ~doc:
            "Jobs with more than $(docv) of deadline left stay on the \
             worker tier: a batch domain is only cooperatively \
             preemptible, so the in-process tier admits only bounded \
             occupancy.")
  in
  let serve_faultfs_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faultfs" ] ~docv:"PLAN"
          ~doc:
            "Robustness self-test: arm the I/O fault injector against the \
             request journal (requires $(b,--journal)) with $(docv), e.g. \
             $(b,eio:every=2) or $(b,enospc:every=3).  Affected requests \
             classify 503 journal-lost; after 3 consecutive failures the \
             daemon degrades to serving un-audited.  Only error-class \
             faults (eio, enospc, eintr) are allowed — crash classes \
             would simulate daemon death, not survive it.")
  in
  let run host port workers max_conns queue_depth cache_capacity req_rate
      fuel_rate header_timeout_s default_deadline_s heartbeat_s journal seed
      verbose batch_domains image_cache_mb batch_deadline_s faultfs =
    Exec.Interrupt.install ();
    let faultfs_plan =
      match faultfs with
      | None -> None
      | Some spec -> (
          match Exec.Fio.plan_of_string spec with
          | Error msg ->
              Fmt.epr "crush serve: --faultfs: %s@." msg;
              exit 2
          | Ok plan -> (
              let fault =
                match plan with
                | Exec.Fio.At { fault; _ } | Exec.Fio.Every { fault; _ } ->
                    fault
              in
              match (fault, journal) with
              | (Exec.Fio.Short_write | Exec.Fio.Crash_after), _ ->
                  Fmt.epr
                    "crush serve: --faultfs: crash-class faults are for the \
                     offline explorer (crush faultfs), not a live daemon@.";
                  exit 2
              | _, None ->
                  Fmt.epr "crush serve: --faultfs requires --journal@.";
                  exit 2
              | _, Some jpath -> Some (jpath, plan)))
    in
    let cfg =
      {
        (Serve.Server.default_config ~binary:Sys.executable_name) with
        Serve.Server.host;
        port;
        workers;
        max_conns;
        queue_depth;
        cache_capacity;
        req_rate;
        req_burst = 2.0 *. req_rate;
        fuel_rate;
        fuel_burst = 4.0 *. fuel_rate;
        header_timeout_s;
        default_deadline_s;
        heartbeat_s;
        journal;
        seed;
        verbose;
        batch_domains;
        image_cache_bytes = max 1 (image_cache_mb * 1024 * 1024);
        batch_long_deadline_s = batch_deadline_s;
      }
    in
    (* Armed before the journal is opened so the channel registers with
       the injector; boot-time journal I/O is in scope on purpose (a
       plan that kills the open fails the daemon fast and loud). *)
    (match faultfs_plan with
    | Some (jpath, plan) -> Exec.Fio.arm ~path_filter:jpath plan
    | None -> ());
    let t = Serve.Server.create cfg in
    Fmt.pr "crush serve: listening on %s:%d (%d workers, queue %d)@." host
      (Serve.Server.port t) workers queue_depth;
    (* After the listening line, which harnesses parse first. *)
    (match faultfs_plan with
    | Some (jpath, plan) ->
        Fmt.pr "crush serve: faultfs armed (%s) against %s@."
          (Exec.Fio.plan_to_string plan) jpath
    | None -> ());
    let d = Serve.Server.run t in
    (match faultfs_plan with
    | Some _ ->
        let injected = Exec.Fio.fired () in
        let ops = Exec.Fio.disarm () in
        Fmt.pr "crush serve: faultfs injected %d fault(s) across %d ops@."
          injected ops
    | None -> ());
    Fmt.pr
      "crush serve: drained conns_left=%d workers_alive=%d leaked_fds=%d@."
      d.Serve.Server.conns_left d.Serve.Server.workers_alive
      d.Serve.Server.leaked_fds;
    if
      d.Serve.Server.conns_left > 0
      || d.Serve.Server.workers_alive > 0
      || d.Serve.Server.leaked_fds > 0
    then exit 1
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ host_arg $ port_arg $ workers_arg $ max_conns_arg
      $ queue_depth_arg $ cache_arg $ req_rate_arg $ fuel_rate_arg
      $ header_timeout_arg $ deadline_arg $ serve_heartbeat_arg
      $ serve_journal_arg $ serve_seed_arg $ verbose_arg $ batch_domains_arg
      $ image_cache_mb_arg $ batch_deadline_arg $ serve_faultfs_arg)

(* ------------------------------------------------------------------ *)
(* bench-serve: load + chaos harness for the daemon                    *)

(** One HTTP exchange against the local daemon.  Opens a fresh
    connection (the server is one-request-per-connection by design). *)
let serve_post ~port ~path ?(headers = []) ~timeout_s body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Serve.Http.write_request fd ~meth:"POST" ~path ~headers body;
      Serve.Http.read_response ~deadline:(Unix.gettimeofday () +. timeout_s) fd)

let serve_get ~port ~path ~timeout_s =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Serve.Http.write_request fd ~meth:"GET" ~path "";
      Serve.Http.read_response ~deadline:(Unix.gettimeofday () +. timeout_s) fd)

(** Spawn [crush serve] as a child with its stdout piped back; returns
    (pid, stdout fd, port) once the listening line arrives. *)
let spawn_serve ?(extra_argv = []) ~workers ~queue_depth ~req_rate ~seed () =
  let r, w = Unix.pipe ~cloexec:true () in
  let argv =
    Array.of_list
      ([
         Sys.executable_name; "serve"; "--port"; "0"; "--workers";
         string_of_int workers; "--queue-depth"; string_of_int queue_depth;
         "--req-rate"; Fmt.str "%g" req_rate; "--seed"; string_of_int seed;
         "--header-timeout-s"; "1";
       ]
      @ extra_argv)
  in
  let pid = Unix.create_process Sys.executable_name argv Unix.stdin w Unix.stderr in
  Unix.close w;
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 256 in
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec wait_line () =
    let s = Buffer.contents acc in
    match String.index_opt s '\n' with
    | Some i -> String.sub s 0 i
    | None ->
        if Unix.gettimeofday () >= deadline then
          failwith "bench-serve: server never printed its listening line"
        else begin
          (match Unix.select [ r ] [] [] 0.25 with
          | [], _, _ -> ()
          | _ -> (
              match Unix.read r buf 0 (Bytes.length buf) with
              | 0 -> failwith "bench-serve: server exited before listening"
              | k -> Buffer.add_subbytes acc buf 0 k));
          wait_line ()
        end
  in
  let line = wait_line () in
  let port =
    (* "... listening on 127.0.0.1:PORT (...)" *)
    match String.split_on_char ':' line with
    | _ :: _ ->
        let after =
          List.nth (String.split_on_char ':' line)
            (List.length (String.split_on_char ':' line) - 1)
        in
        (match String.split_on_char ' ' (String.trim after) with
        | p :: _ -> int_of_string_opt p
        | [] -> None)
    | [] -> None
  in
  match port with
  | Some p -> (pid, r, p)
  | None -> failwith ("bench-serve: cannot parse listening line: " ^ line)

(** Drain the child's remaining stdout (the drain summary) and reap. *)
let reap_serve pid r =
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 256 in
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go () =
    if Unix.gettimeofday () < deadline then
      match Unix.select [ r ] [] [] 0.25 with
      | [], _, _ -> go ()
      | _ -> (
          match Unix.read r buf 0 (Bytes.length buf) with
          | 0 -> ()
          | k ->
              Buffer.add_subbytes acc buf 0 k;
              go ())
  in
  go ();
  (try Unix.close r with Unix.Unix_error _ -> ());
  let status =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED c -> c
    | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> 128
    | exception Unix.Unix_error _ -> 128
  in
  (status, Buffer.contents acc)

(** Pull "k=v" integer fields out of the drain summary line. *)
let drain_field out k =
  let marker = k ^ "=" in
  let rec find i =
    if i + String.length marker > String.length out then None
    else if String.sub out i (String.length marker) = marker then begin
      let j = ref (i + String.length marker) in
      let start = !j in
      while
        !j < String.length out
        && (out.[!j] = '-' || (out.[!j] >= '0' && out.[!j] <= '9'))
      do
        incr j
      done;
      int_of_string_opt (String.sub out start (!j - start))
    end
    else find (i + 1)
  in
  find 0

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (p * n / 100))

let bench_serve_cmd =
  let doc =
    "Load-and-chaos harness for $(b,crush serve): boots a private daemon \
     on an ephemeral port, drives it with N concurrent clients over a \
     mixed workload (cache-hit, cache-miss, malformed, deadline-0), \
     optionally SIGKILLs live workers mid-run and runs protocol-chaos \
     clients (slow-loris, oversized payloads, mid-request disconnects), \
     then SIGTERMs the daemon and checks the drain: no leaked fds, no \
     surviving workers, correct API codes throughout.  Writes \
     schema-versioned latency/shed/cache metrics to BENCH_serve.json."
  in
  let clients_arg =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client threads.")
  in
  let requests_arg =
    Arg.(
      value & opt int 8
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let kill_workers_arg =
    Arg.(
      value & opt int 0
      & info [ "kill-workers" ] ~docv:"N"
          ~doc:
            "SIGKILL $(docv) live worker processes mid-run; the affected \
             requests must classify worker-lost (503) and the daemon must \
             keep serving.")
  in
  let chaos_clients_arg =
    Arg.(
      value & opt int 0
      & info [ "chaos-clients" ] ~docv:"N"
          ~doc:
            "Run $(docv) protocol-chaos clients alongside the load: \
             slow-loris headers, oversized payloads, mid-request \
             disconnects.  The daemon must survive without leaking fds or \
             workers.")
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_serve.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Metrics report path.")
  in
  let bench_workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Daemon worker pool size.")
  in
  let bench_faultfs_arg =
    Arg.(
      value & flag
      & info [ "faultfs" ]
          ~doc:
            "Journal-fault leg: boot the daemon with a request journal and \
             $(b,--faultfs eio:every=2), so every other journal append \
             fails.  The gate then also requires journal errors in \
             /v1/stats, at least one 503 journal-lost or a degraded \
             journal, and the usual clean drain.")
  in
  let connections_arg =
    Arg.(
      value & opt int 0
      & info [ "connections" ] ~docv:"N"
          ~doc:
            "High-concurrency scale leg: after the mixed-workload legs, \
             drive $(docv) concurrent connections for $(b,--duration) \
             seconds, alternating short-deadline (batch-tier) and \
             long-deadline (worker-tier) cache-warm jobs with fresh seeds \
             (so every request runs, none is absorbed by the result \
             cache).  Reports per-tier p50/p99 and throughput plus the \
             image-cache hit rate, and gates batch-tier p50 strictly \
             below worker-tier p50.  0 disables the leg.")
  in
  let duration_arg =
    Arg.(
      value & opt float 5.0
      & info [ "duration" ] ~docv:"S"
          ~doc:"Scale-leg duration in seconds (with $(b,--connections)).")
  in
  let run clients requests kill_workers chaos_clients out workers faultfs
      connections duration =
    Exec.Interrupt.install ();
    (* Chaos clients write into sockets the server may already have
       reset; that must surface as EPIPE, not kill the harness. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let faultfs_journal =
      if not faultfs then None
      else
        Some
          (Filename.concat
             (Filename.get_temp_dir_name ())
             (Fmt.str "crush-bench-faultfs-%d.jsonl" (Unix.getpid ())))
    in
    (match faultfs_journal with
    | Some j when Sys.file_exists j -> Sys.remove j
    | _ -> ());
    let extra_argv =
      (match faultfs_journal with
      | None -> []
      | Some j -> [ "--journal"; j; "--faultfs"; "eio:every=2" ])
      @
      (* The scale leg measures tier latency, not tenant quotas: with
         the default fuel rate a fast batch tier would shed itself. *)
      if connections > 0 then [ "--fuel-rate"; "1e9" ] else []
    in
    let pid, child_out, port =
      spawn_serve ~extra_argv ~workers ~queue_depth:16 ~req_rate:500.0 ~seed:1
        ()
    in
    Fmt.pr "bench-serve: daemon pid %d on port %d@." pid port;
    let m = Mutex.create () in
    let results : (float * int * string) list ref = ref [] in
    let record lat status code =
      Mutex.lock m;
      results := (lat, status, code) :: !results;
      Mutex.unlock m
    in
    let code_of_body body =
      match Exec.Jsonl.parse body with
      | Ok j ->
          Option.value ~default:"?"
            (Option.bind (Exec.Jsonl.member "code" j) Exec.Jsonl.to_str)
      | Error _ -> "?"
    in
    let cache_of_body body =
      match Exec.Jsonl.parse body with
      | Ok j -> Option.bind (Exec.Jsonl.member "cache" j) Exec.Jsonl.to_str
      | Error _ -> None
    in
    let hot_body =
      {|{"kernel":"gsum","seed":1,"max_cycles":200000,"deadline_ms":30000}|}
    in
    let cold_body i =
      Fmt.str
        {|{"kernel":"gsum","seed":%d,"max_cycles":200000,"deadline_ms":30000}|}
        (1000 + i)
    in
    let poison_body = {|{"kernel":"no-such-kernel"}|} in
    let deadline0_body =
      {|{"kernel":"gsum","seed":1,"max_cycles":200000,"deadline_ms":0}|}
    in
    let cache_hits = ref 0 and cache_misses = ref 0 in
    let client c =
      for i = 0 to requests - 1 do
        if not (Exec.Interrupt.triggered ()) then begin
          let idx = (c * requests) + i in
          let body =
            match idx mod 8 with
            | 6 -> poison_body
            | 7 -> deadline0_body
            | 3 -> cold_body idx
            | _ -> hot_body
          in
          let t0 = Unix.gettimeofday () in
          match
            serve_post ~port ~path:"/v1/submit"
              ~headers:[ ("X-Tenant", Fmt.str "client-%d" (c mod 2)) ]
              ~timeout_s:60.0 body
          with
          | Ok (status, _, rbody) ->
              let lat = (Unix.gettimeofday () -. t0) *. 1000.0 in
              (match cache_of_body rbody with
              | Some "hit" ->
                  Mutex.lock m;
                  incr cache_hits;
                  Mutex.unlock m
              | Some "miss" ->
                  Mutex.lock m;
                  incr cache_misses;
                  Mutex.unlock m
              | _ -> ());
              record lat status (code_of_body rbody)
          | Error _ ->
              record ((Unix.gettimeofday () -. t0) *. 1000.0) 0 "transport"
        end
      done
    in
    (* Protocol chaos: each round must end with the connection cleanly
       refused or timed out server-side, never a daemon crash. *)
    let chaos_client _c =
      let rounds = 3 in
      for _r = 1 to rounds do
        if not (Exec.Interrupt.triggered ()) then begin
          (* slow-loris: partial headers, then silence past the 1 s
             header timeout. *)
          (let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
           (try
              Unix.connect fd
                (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              let partial = "POST /v1/submit HTTP/1.1\r\nCon" in
              ignore
                (Unix.write_substring fd partial 0 (String.length partial));
              Thread.delay 1.4;
              ignore
                (Serve.Http.read_response
                   ~deadline:(Unix.gettimeofday () +. 5.0)
                   fd)
            with Unix.Unix_error _ -> ());
           try Unix.close fd with Unix.Unix_error _ -> ());
          (* oversized payload: honest Content-Length over the cap. *)
          (let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
           (try
              Unix.connect fd
                (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              let hdr =
                "POST /v1/submit HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
              in
              ignore (Unix.write_substring fd hdr 0 (String.length hdr));
              ignore
                (Serve.Http.read_response
                   ~deadline:(Unix.gettimeofday () +. 5.0)
                   fd)
            with Unix.Unix_error _ -> ());
           try Unix.close fd with Unix.Unix_error _ -> ());
          (* mid-request disconnect: half a body, then hang up. *)
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try
             Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
             let hdr =
               "POST /v1/submit HTTP/1.1\r\nContent-Length: 400\r\n\r\n{\"ker"
             in
             ignore (Unix.write_substring fd hdr 0 (String.length hdr))
           with Unix.Unix_error _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
      done
    in
    (* Worker chaos: SIGKILL live workers once the daemon is warm. *)
    let killer () =
      if kill_workers > 0 then begin
        Thread.delay 0.6;
        match serve_get ~port ~path:"/v1/stats" ~timeout_s:10.0 with
        | Ok (_, _, body) -> (
            match Exec.Jsonl.parse body with
            | Ok j ->
                let pids =
                  Option.bind (Exec.Jsonl.member "workers" j) (fun w ->
                      Option.bind (Exec.Jsonl.member "pids" w)
                        Exec.Jsonl.to_list)
                  |> Option.value ~default:[]
                  |> List.filter_map Exec.Jsonl.to_int
                in
                List.iteri
                  (fun i p ->
                    if i < kill_workers then begin
                      Fmt.pr "bench-serve: SIGKILL worker %d@." p;
                      try Unix.kill p Sys.sigkill
                      with Unix.Unix_error _ -> ()
                    end)
                  pids;
                (* Probe the wounded pool: cold submissions (cache can't
                   absorb them) must either classify worker-lost on the
                   dead slot or complete on a healthy one — both count
                   as "only the affected request pays". *)
                for i = 0 to kill_workers do
                  let t0 = Unix.gettimeofday () in
                  match
                    serve_post ~port ~path:"/v1/submit"
                      ~headers:[ ("X-Tenant", "killer") ] ~timeout_s:60.0
                      (cold_body (900_000 + i))
                  with
                  | Ok (status, _, rbody) ->
                      record
                        ((Unix.gettimeofday () -. t0) *. 1000.0)
                        status (code_of_body rbody)
                  | Error _ ->
                      record
                        ((Unix.gettimeofday () -. t0) *. 1000.0)
                        0 "transport"
                done
            | Error _ -> ())
        | Error _ -> ()
      end
    in
    let threads =
      List.init clients (fun c -> Thread.create client c)
      @ List.init chaos_clients (fun c -> Thread.create chaos_client c)
      @ [ Thread.create killer () ]
    in
    List.iter Thread.join threads;
    let interrupted = Exec.Interrupt.triggered () in
    (* Journal-fault leg: read the injection counters while the daemon
       is still up. *)
    let journal_errors, journal_degraded =
      if not faultfs then (0, false)
      else
        match serve_get ~port ~path:"/v1/stats" ~timeout_s:10.0 with
        | Ok (_, _, body) -> (
            match Exec.Jsonl.parse body with
            | Ok j ->
                ( Option.value ~default:0
                    (Option.bind
                       (Exec.Jsonl.member "journal_errors" j)
                       Exec.Jsonl.to_int),
                  Option.value ~default:false
                    (Option.bind
                       (Exec.Jsonl.member "journal_degraded" j)
                       Exec.Jsonl.to_bool) )
            | Error _ -> (0, false))
        | Error _ -> (0, false)
    in
    (* High-concurrency scale leg: per-tier latency under load.  Every
       request uses a fresh seed, so the result cache absorbs nothing
       and each 200 reports the tier that actually ran it; the circuit
       digest is seed-independent, so after one warm-up on the worker
       tier the compiled image serves every batch-tier run. *)
    let scale =
      if connections <= 0 || Exec.Interrupt.triggered () then None
      else begin
        let seedc = Atomic.make 5_000_000 in
        let fresh_body ~deadline_ms =
          Fmt.str
            {|{"kernel":"gsum","seed":%d,"max_cycles":200000,"deadline_ms":%d}|}
            (Atomic.fetch_and_add seedc 1) deadline_ms
        in
        (match
           serve_post ~port ~path:"/v1/submit"
             ~headers:[ ("X-Tenant", "scale-warm") ] ~timeout_s:60.0
             (fresh_body ~deadline_ms:30_000)
         with
        | Ok (200, _, _) -> ()
        | Ok (st, _, _) -> Fmt.pr "bench-serve: scale warm-up returned %d@." st
        | Error _ -> Fmt.pr "bench-serve: scale warm-up transport error@.");
        let sm = Mutex.create () in
        let tiers : (string * float * int) list ref = ref [] in
        let tier_of_body body =
          match Exec.Jsonl.parse body with
          | Ok j ->
              Option.value ~default:"?"
                (Option.bind (Exec.Jsonl.member "tier" j) Exec.Jsonl.to_str)
          | Error _ -> "?"
        in
        let stop_at = Unix.gettimeofday () +. duration in
        (* Even connections hammer the batch tier (short deadline), odd
           ones the worker tier (long deadline): same window, same
           circuit, same fuel — only the tier differs. *)
        let conn_thread c =
          let deadline_ms = if c mod 2 = 0 then 10_000 else 30_000 in
          while
            Unix.gettimeofday () < stop_at
            && not (Exec.Interrupt.triggered ())
          do
            let t0 = Unix.gettimeofday () in
            match
              serve_post ~port ~path:"/v1/submit"
                ~headers:[ ("X-Tenant", Fmt.str "scale-%d" c) ]
                ~timeout_s:60.0
                (fresh_body ~deadline_ms)
            with
            | Ok (status, _, rbody) ->
                let lat = (Unix.gettimeofday () -. t0) *. 1000.0 in
                Mutex.lock sm;
                tiers := (tier_of_body rbody, lat, status) :: !tiers;
                Mutex.unlock sm
            | Error _ ->
                Mutex.lock sm;
                tiers := ("transport", 0.0, 0) :: !tiers;
                Mutex.unlock sm
          done
        in
        let threads =
          List.init connections (fun c -> Thread.create conn_thread c)
        in
        List.iter Thread.join threads;
        let all = !tiers in
        let lats tier =
          List.filter_map
            (fun (t, l, s) -> if t = tier && s = 200 then Some l else None)
            all
          |> Array.of_list
        in
        let blats = lats "batch" and wlats = lats "worker" in
        Array.sort compare blats;
        Array.sort compare wlats;
        Some (connections, duration, blats, wlats)
      end
    in
    (* Image-cache counters, read while the daemon is still up. *)
    let image_hits, image_misses, image_entries =
      match serve_get ~port ~path:"/v1/stats" ~timeout_s:10.0 with
      | Ok (_, _, body) -> (
          match Exec.Jsonl.parse body with
          | Ok j ->
              let ic = Exec.Jsonl.member "image_cache" j in
              let f k =
                Option.value ~default:0
                  (Option.bind
                     (Option.bind ic (Exec.Jsonl.member k))
                     Exec.Jsonl.to_int)
              in
              (f "hits", f "misses", f "entries")
          | Error _ -> (0, 0, 0))
      | Error _ -> (0, 0, 0)
    in
    let image_hit_rate =
      if image_hits + image_misses = 0 then 0.0
      else float_of_int image_hits /. float_of_int (image_hits + image_misses)
    in
    (* Graceful shutdown + drain audit. *)
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    let server_exit, child_tail = reap_serve pid child_out in
    let all = !results in
    let total = List.length all in
    let lats =
      List.filter_map
        (fun (l, s, _) -> if s > 0 then Some l else None)
        all
      |> Array.of_list
    in
    Array.sort compare lats;
    let p50 = percentile lats 50 and p99 = percentile lats 99 in
    let count pred = List.length (List.filter pred all) in
    let n_ok = count (fun (_, s, _) -> s = 200) in
    let n_shed = count (fun (_, s, _) -> s = 429) in
    let n_lost = count (fun (_, _, c) -> c = "worker-lost" || c = "worker-killed") in
    let n_400 = count (fun (_, s, _) -> s = 400) in
    let n_504 = count (fun (_, s, _) -> s = 504) in
    let n_journal_lost = count (fun (_, _, c) -> c = "journal-lost") in
    let shed_rate = if total = 0 then 0.0 else float_of_int n_shed /. float_of_int total in
    let hit_rate =
      let h = !cache_hits and ms = !cache_misses in
      if h + ms = 0 then 0.0 else float_of_int h /. float_of_int (h + ms)
    in
    let drained k = Option.value ~default:(-1) (drain_field child_tail k) in
    let conns_left = drained "conns_left"
    and workers_alive = drained "workers_alive"
    and leaked_fds = drained "leaked_fds" in
    let open Exec.Jsonl in
    let report =
      Obj
        [
          ("schema_version", Int Exec.Journal.schema_version);
          ("bench", String "serve");
          ("clients", Int clients);
          ("requests_per_client", Int requests);
          ("chaos_clients", Int chaos_clients);
          ("killed_workers", Int kill_workers);
          ("total", Int total);
          ("ok", Int n_ok);
          ("bad_request", Int n_400);
          ("deadline_exceeded", Int n_504);
          ("worker_lost", Int n_lost);
          ("shed", Int n_shed);
          ("p50_ms", Float p50);
          ("p99_ms", Float p99);
          ("shed_rate", Float shed_rate);
          ("cache_hit_rate", Float hit_rate);
          ( "image_cache",
            Obj
              [
                ("hits", Int image_hits);
                ("misses", Int image_misses);
                ("entries", Int image_entries);
                ("hit_rate", Float image_hit_rate);
              ] );
          ( "scale",
            match scale with
            | None -> Obj [ ("enabled", Bool false) ]
            | Some (conns, dur, blats, wlats) ->
                let tier_obj lats =
                  Obj
                    [
                      ("requests", Int (Array.length lats));
                      ("p50_ms", Float (percentile lats 50));
                      ("p99_ms", Float (percentile lats 99));
                      ( "throughput_rps",
                        Float (float_of_int (Array.length lats) /. dur) );
                    ]
                in
                Obj
                  [
                    ("enabled", Bool true);
                    ("connections", Int conns);
                    ("duration_s", Float dur);
                    ("batch", tier_obj blats);
                    ("worker", tier_obj wlats);
                    ("image_hit_rate", Float image_hit_rate);
                  ] );
          ("interrupted", Bool interrupted);
          ( "faultfs",
            Obj
              [
                ("enabled", Bool faultfs);
                ("journal_errors", Int journal_errors);
                ("journal_lost_responses", Int n_journal_lost);
                ("journal_degraded", Bool journal_degraded);
              ] );
          ( "drain",
            Obj
              [
                ("server_exit", Int server_exit);
                ("conns_left", Int conns_left);
                ("workers_alive", Int workers_alive);
                ("leaked_fds", Int leaked_fds);
              ] );
        ]
    in
    Exec.Journal.write_atomic out (fun oc ->
        output_string oc (to_string report);
        output_string oc "\n");
    Fmt.pr
      "bench-serve: %d requests — %d ok, %d bad-request, %d deadline, %d \
       worker-lost, %d shed@."
      total n_ok n_400 n_504 n_lost n_shed;
    Fmt.pr "bench-serve: p50 %.1f ms, p99 %.1f ms, shed rate %.2f, cache hit \
            rate %.2f@."
      p50 p99 shed_rate hit_rate;
    (match scale with
    | None -> ()
    | Some (conns, dur, blats, wlats) ->
        Fmt.pr
          "bench-serve: scale %d conns x %.1fs — batch %d reqs p50 %.1f ms \
           p99 %.1f ms; worker %d reqs p50 %.1f ms p99 %.1f ms; image hit \
           rate %.2f@."
          conns dur (Array.length blats) (percentile blats 50)
          (percentile blats 99) (Array.length wlats) (percentile wlats 50)
          (percentile wlats 99) image_hit_rate);
    Fmt.pr "bench-serve: drain server_exit=%d conns_left=%d workers_alive=%d \
            leaked_fds=%d@."
      server_exit conns_left workers_alive leaked_fds;
    Fmt.pr "wrote %s@." out;
    if interrupted then begin
      Fmt.pr "bench-serve: interrupted — partial report written@.";
      exit Exec.Interrupt.exit_code
    end;
    (* The smoke gate. *)
    let fail = ref [] in
    let gate cond msg = if not cond then fail := msg :: !fail in
    gate (server_exit = 0) "server exited nonzero";
    gate (workers_alive = 0) "workers survived the drain";
    gate (conns_left = 0) "connections survived the drain";
    gate (leaked_fds <= 0) "fds leaked across the daemon lifetime";
    gate (n_ok > 0) "no successful requests";
    gate (hit_rate > 0.0) "cache hit rate was zero";
    gate (n_400 > 0) "malformed submissions never classified bad-request";
    gate (n_504 > 0) "deadline-0 submissions never classified deadline-exceeded";
    if kill_workers > 0 then
      gate
        (n_lost > 0 || n_ok > clients)
        "worker kill neither classified worker-lost nor survived";
    (match scale with
    | None -> ()
    | Some (_, _, blats, wlats) ->
        gate (Array.length blats > 0) "scale leg: no batch-tier successes";
        gate (Array.length wlats > 0) "scale leg: no worker-tier successes";
        gate
          (Array.length blats = 0
          || Array.length wlats = 0
          || percentile blats 50 < percentile wlats 50)
          "scale leg: batch-tier p50 not below worker-tier p50";
        gate (image_hit_rate > 0.0) "scale leg: image-cache hit rate was zero");
    if faultfs then begin
      Fmt.pr
        "bench-serve: faultfs journal_errors=%d journal-lost=%d degraded=%b@."
        journal_errors n_journal_lost journal_degraded;
      gate (journal_errors >= 1) "faultfs injected no journal append failure";
      gate
        (n_journal_lost > 0 || journal_degraded)
        "journal faults neither classified journal-lost nor degraded";
      match faultfs_journal with
      | Some j when Sys.file_exists j -> Sys.remove j
      | _ -> ()
    end;
    match !fail with
    | [] -> Fmt.pr "bench-serve: smoke gate ok@."
    | msgs ->
        List.iter (fun s -> Fmt.pr "bench-serve: GATE FAILED: %s@." s) msgs;
        exit 1
  in
  Cmd.v (Cmd.info "bench-serve" ~doc)
    Term.(
      const run $ clients_arg $ requests_arg $ kill_workers_arg
      $ chaos_clients_arg $ out_arg $ bench_workers_arg $ bench_faultfs_arg
      $ connections_arg $ duration_arg)

(* ------------------------------------------------------------------ *)
(* faultfs: exhaustive I/O fault-schedule exploration                  *)

let faultfs_cmd =
  let doc =
    "Deterministic I/O fault-schedule exploration of every durability \
     path: each scenario (journal append, atomic replace, shard merge, \
     supervised campaign) first runs fault-free to count its I/O ops, \
     then re-runs once per (op, fault class) pair — EIO, ENOSPC, short \
     write, EINTR, crash-after-op — and is checked for recovery-invariant \
     violations, stale $(b,.tmp.) residue and leaked fds.  A failing run \
     is fully named by (scenario, op, fault) and replayed with \
     $(b,--scenario), $(b,--op) and $(b,--fault).  Exits nonzero on any \
     violation."
  in
  let scenario_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"Explore only $(docv) (journal|atomic|merge|campaign).")
  in
  let root_arg =
    Arg.(
      value
      & opt string "_build/faultfs"
      & info [ "root" ] ~docv:"DIR"
          ~doc:"Scratch directory for scenario state (recreated per run).")
  in
  let faultfs_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the per-injection-point verdict table to $(docv) \
                as JSONL (one row per (scenario, op, fault) run).")
  in
  let op_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "op" ] ~docv:"K"
          ~doc:"Replay only injection point $(docv) (1-based op number).")
  in
  let fault_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"FAULT"
          ~doc:"Restrict to one fault class \
                (eio|enospc|short-write|eintr|crash).")
  in
  let run scenario root out op fault =
    let scenarios =
      match scenario with
      | None -> Exec.Faultfs.builtin ()
      | Some name -> (
          match Exec.Faultfs.find name with
          | Some s -> [ s ]
          | None ->
              Fmt.epr "crush faultfs: unknown scenario %s@." name;
              exit 2)
    in
    let faults =
      match fault with
      | None -> None
      | Some f -> (
          match Exec.Fio.fault_of_string f with
          | Ok f -> Some [ f ]
          | Error msg ->
              Fmt.epr "crush faultfs: %s@." msg;
              exit 2)
    in
    let rows, runs, bad = faultfs_explore ?faults ?only_op:op ~root scenarios in
    (match out with
    | None -> ()
    | Some path ->
        Exec.Journal.write_atomic path (fun oc ->
            List.iter
              (fun row ->
                output_string oc (Exec.Jsonl.to_string row);
                output_string oc "\n")
              rows);
        Fmt.pr "wrote %s@." path);
    if bad = 0 then
      Fmt.pr "faultfs: %d scenarios x every (op, fault) — %d runs, 0 \
              violations@."
        (List.length scenarios) runs
    else begin
      Fmt.pr "faultfs: %d violation(s) across %d runs@." bad runs;
      exit 1
    end
  in
  Cmd.v (Cmd.info "faultfs" ~doc)
    Term.(
      const run $ scenario_arg $ root_arg $ faultfs_out_arg $ op_arg
      $ fault_arg)

let main =
  let doc = "CRUSH: credit-based functional-unit sharing for dataflow circuits" in
  Cmd.group
    (Cmd.info "crush" ~version:"1.0.0" ~doc)
    [
      list_cmd; compile_cmd; analyze_cmd; run_cmd; stats_cmd; trace_cmd;
      profile_cmd; chaos_cmd; sanitize_cmd; reduce_cmd; serve_cmd;
      bench_serve_cmd; faultfs_cmd;
    ]

let usage_line = "usage: crush COMMAND [OPTION]…  (try crush --help)"

let () =
  (* Worker_crash outcomes carry the backtrace of the escaping
     exception; without this it is empty in production builds. *)
  Printexc.record_backtrace true;
  (* Hidden worker mode: [crush __worker --kind chaos --shard N ...] is
     how the shard supervisor re-execs this binary.  Dispatched before
     cmdliner ever sees the argv — it is an internal protocol, not a
     subcommand. *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "__worker" then begin
    let opts = Exec.Supervisor.worker_opts_of_argv Sys.argv in
    match opts.Exec.Supervisor.kind with
    | "chaos" ->
        Exec.Supervisor.worker_main ~opts ~run:(chaos_worker_run opts) ()
    | "serve" ->
        Exec.Supervisor.worker_main ~opts ~run:(Serve.Job.worker_run opts) ()
    | k ->
        Fmt.epr "crush __worker: unknown kind %s@." k;
        exit 2
  end
  else
    (* Exit-code contract (pinned by the test suite): 0 success, 2 for
       CLI usage errors (unknown flag / missing argument / unknown
       subcommand, with a one-line usage pointer), 125 for an escaped
       exception; 10..17 are the per-class failure codes the subcommands
       exit with themselves ({!Exec.Outcome.exit_code}), 17 being a lost
       or preemptively killed worker process; 18
       ({!Exec.Interrupt.exit_code}) is a SIGTERM/SIGINT-interrupted but
       resumable sweep (rerun with the same --journal to continue). *)
    match Cmd.eval_value main with
    | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
    | Error (`Parse | `Term) ->
        (* cmdliner already printed the specific complaint on stderr. *)
        prerr_endline usage_line;
        exit 2
    | Error `Exn -> exit 125
